//! The write side of the engine: typed per-object updates and the
//! outcome of applying a batch of them to a [`crate::TileForest`].
//!
//! The read path treats a dataset as an immutable snapshot; this module
//! is what turns it into a *mutable versioned store*. A batch of
//! [`Update`]s is applied through
//! [`crate::BatchExecutor::apply_updates`]: each object is routed to
//! the tiles it overlaps (the same multi-assignment the bulk build
//! uses), the affected per-tile clipped trees are maintained through
//! `ClippedRTree::insert`/`delete` (§IV-D clip maintenance), and
//! *untouched tiles are shared* with the previous forest — the
//! copy-on-write delta that makes an update batch cost proportional to
//! what changed instead of a wholesale rebuild.
//!
//! Aji et al. (*Effective Spatial Data Partitioning for Scalable Query
//! Processing*) and Tsitsigkos et al. (*Parallel In-Memory Evaluation
//! of Spatial Joins*) both observe that partition-local maintenance is
//! what lets a partitioned spatial system run as a long-lived service;
//! this module is that maintenance path for the clipped-MBB engine.

use cbb_geom::Rect;
use cbb_rtree::DataId;

/// One mutation of the served dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Update<const D: usize> {
    /// Add an object; the store assigns the next free [`DataId`].
    Insert(Rect<D>),
    /// Remove the object with this id (a no-op on dead or unknown ids).
    Delete(DataId),
}

/// What happened to one [`Update`], aligned with the input batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateResult {
    /// The insert was applied under this freshly assigned id.
    Inserted(DataId),
    /// The delete was applied (`true`) or the id was dead/unknown
    /// (`false`).
    Deleted(bool),
    /// The insert was refused (non-finite rectangle) — nothing changed.
    Rejected,
}

/// Merged outcome of applying one update batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Per-update results, in batch order.
    pub results: Vec<UpdateResult>,
    /// Distinct tiles whose trees were touched (COW-cloned) by the
    /// batch. Tiles outside every updated object's covering set stay
    /// shared with the previous forest.
    pub tiles_touched: usize,
    /// Tile trees created for previously empty tiles.
    pub trees_created: usize,
    /// Tile trees dropped because the last object left them.
    pub trees_dropped: usize,
    /// R-tree nodes constructed while applying the batch (splits, new
    /// roots, fresh tile roots). Machine-independent: the delta-apply
    /// vs rebuild-per-batch comparison `BENCH_update.json` reports.
    pub nodes_allocated: u64,
    /// Tombstoned arena slots swept into the free list by the
    /// compaction pass that ran after this batch (0 when the
    /// [`crate::CompactionPolicy`] threshold was not crossed). Reclaimed
    /// slots are reused by later inserts; live ids never move.
    pub slots_reclaimed: usize,
}

impl UpdateOutcome {
    /// Ids assigned to the batch's applied inserts, in batch order.
    pub fn inserted_ids(&self) -> Vec<DataId> {
        self.results
            .iter()
            .filter_map(|r| match r {
                UpdateResult::Inserted(id) => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Number of applied deletes (`Deleted(true)` results).
    pub fn deletes_applied(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r, UpdateResult::Deleted(true)))
            .count()
    }

    /// Updates that changed the store (applied inserts + applied
    /// deletes). A batch with `applied() == 0` bumps no version and
    /// must invalidate no cache.
    pub fn applied(&self) -> u64 {
        self.results
            .iter()
            .filter(|r| matches!(r, UpdateResult::Inserted(_) | UpdateResult::Deleted(true)))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::Point;

    #[test]
    fn outcome_accessors() {
        let outcome = UpdateOutcome {
            results: vec![
                UpdateResult::Inserted(DataId(7)),
                UpdateResult::Deleted(true),
                UpdateResult::Rejected,
                UpdateResult::Inserted(DataId(9)),
                UpdateResult::Deleted(false),
            ],
            ..UpdateOutcome::default()
        };
        assert_eq!(outcome.inserted_ids(), vec![DataId(7), DataId(9)]);
        assert_eq!(outcome.deletes_applied(), 1);
    }

    #[test]
    fn update_is_plain_data() {
        let r: Rect<2> = Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0]));
        let a = Update::Insert(r);
        let b = a;
        assert_eq!(a, b);
        assert_ne!(Update::<2>::Delete(DataId(3)), b);
    }
}
