//! Minimal scoped-thread worker pool.
//!
//! Two scheduling disciplines, both built on `std::thread::scope` (no
//! external dependencies, no long-lived threads):
//!
//! * [`fold_dynamic`] — workers pull item indices from a shared atomic
//!   counter and fold them into per-worker accumulators. Best when item
//!   costs are skewed (join tiles over clustered data), since fast
//!   workers steal the remaining items. Output order is per-worker, so
//!   use it for *commutative* accumulation (counter merging).
//! * [`fold_dynamic_tasks`] — the same discipline over a materialised
//!   task slice. This is the shared queue of the join's *two-level*
//!   scheduler: whole cold tiles and the node-pair / probe-chunk
//!   subtasks of decomposed hot tiles interleave on one queue, ordered
//!   heaviest-first (LPT) by the caller, so a fast worker steals a hot
//!   tile's remaining subtasks instead of idling behind it.
//! * [`map_chunked`] — items are split into one contiguous chunk per
//!   worker and the per-chunk outputs come back in input order. Use it
//!   when the result must be deterministic and position-addressed
//!   (batched query answers).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Clamp a requested worker count to something sane for `items` items:
/// at least one, at most one per item.
pub fn effective_workers(requested: usize, items: usize) -> usize {
    requested.max(1).min(items.max(1))
}

/// Process `items` indices `0..items` on `workers` threads pulling work
/// from a shared queue; each worker folds its items into an accumulator
/// seeded by `init`, and all accumulators are returned (in worker order).
///
/// `step` must be safe to call concurrently for distinct indices; every
/// index is processed exactly once.
pub fn fold_dynamic<A, I, F>(workers: usize, items: usize, init: I, step: F) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(usize, &mut A) + Sync,
{
    let workers = effective_workers(workers, items);
    if workers == 1 {
        let mut acc = init();
        for i in 0..items {
            step(i, &mut acc);
        }
        return vec![acc];
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        step(i, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

/// [`fold_dynamic`] over an explicit task slice: workers pull tasks from
/// the shared queue front-to-back, so callers control priority by order
/// (put the heaviest tasks first for LPT scheduling).
pub fn fold_dynamic_tasks<T, A, I, F>(workers: usize, tasks: &[T], init: I, step: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&T, &mut A) + Sync,
{
    fold_dynamic(workers, tasks.len(), init, |i, acc| step(&tasks[i], acc))
}

/// Split `items` into one contiguous chunk per worker, apply `f` to each
/// chunk concurrently, and return the outputs **in input order**. `f`
/// receives the chunk's starting offset within `items`.
pub fn map_chunked<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = effective_workers(workers, items.len());
    if workers == 1 {
        return vec![f(0, items)];
    }
    // Spread the remainder over the first chunks so sizes differ by ≤ 1.
    let base = items.len() / workers;
    let extra = items.len() % workers;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let chunk = &items[start..start + len];
            let offset = start;
            let f = &f;
            handles.push(scope.spawn(move || f(offset, chunk)));
            start += len;
        }
        debug_assert_eq!(start, items.len());
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 0), 1);
        assert_eq!(effective_workers(2, 100), 2);
    }

    #[test]
    fn fold_dynamic_visits_every_index_once() {
        for workers in [1, 2, 5, 16] {
            let seen = Mutex::new(Vec::new());
            let accs = fold_dynamic(
                workers,
                100,
                || 0u64,
                |i, acc| {
                    seen.lock().unwrap().push(i);
                    *acc += i as u64;
                },
            );
            assert!(accs.len() <= workers.max(1));
            assert_eq!(accs.iter().sum::<u64>(), (0..100).sum::<u64>());
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen.len(), 100);
            assert_eq!(seen.iter().copied().collect::<HashSet<_>>().len(), 100);
        }
    }

    #[test]
    fn fold_dynamic_zero_items() {
        let accs = fold_dynamic(4, 0, || 7u32, |_, _| unreachable!("no items"));
        assert_eq!(accs, vec![7]);
    }

    #[test]
    fn fold_dynamic_tasks_folds_every_task() {
        let tasks: Vec<u64> = (0..57).map(|i| i * 3).collect();
        for workers in [1, 3, 8] {
            let accs = fold_dynamic_tasks(workers, &tasks, || 0u64, |t, acc| *acc += *t);
            assert_eq!(
                accs.iter().sum::<u64>(),
                tasks.iter().sum::<u64>(),
                "workers = {workers}"
            );
        }
        let none = fold_dynamic_tasks(4, &[] as &[u64], || 1u32, |_, _| unreachable!());
        assert_eq!(none, vec![1]);
    }

    #[test]
    fn map_chunked_preserves_order_and_offsets() {
        let items: Vec<u32> = (0..37).collect();
        for workers in [1, 2, 3, 8, 64] {
            let outs = map_chunked(workers, &items, |offset, chunk| {
                assert_eq!(chunk[0] as usize, offset);
                chunk.to_vec()
            });
            let flat: Vec<u32> = outs.into_iter().flatten().collect();
            assert_eq!(flat, items, "workers = {workers}");
        }
    }

    #[test]
    fn map_chunked_empty_input() {
        let outs = map_chunked(3, &[] as &[u8], |_, chunk| chunk.len());
        assert_eq!(outs, vec![0]);
    }
}
