//! Region-split partitioner: a quadtree (octree in 3-d) that recursively
//! splits any tile whose assigned load exceeds a budget.
//!
//! Where the [`crate::AdaptiveGrid`] equalises *marginal* distributions
//! per axis, the region split follows the joint distribution: a dense
//! cluster is subdivided in place until every leaf holds at most
//! `budget` objects (or the depth cap is hit), while empty space stays a
//! handful of coarse tiles. Leaves are the tiles; ownership descends the
//! tree with the same "boundary belongs to the upper side" rule the
//! grids use, so the engine's reference-point duplicate elimination
//! applies unchanged.

use cbb_geom::{Point, Rect};

use crate::partition::Partitioner;

/// Hard recursion cap: identical or near-identical objects could
/// otherwise split forever without ever meeting the budget.
const MAX_DEPTH: u32 = 16;

#[derive(Clone, Debug, PartialEq)]
struct QtNode<const D: usize> {
    rect: Rect<D>,
    /// `Some((split center, first child))` for internal nodes — the
    /// `2^D` children are stored consecutively from `first child`, the
    /// child index of a point being the bitmask of `p[i] >= center[i]`.
    split: Option<(Point<D>, u32)>,
    /// Leaf tile id (dense, creation order); unused for internal nodes.
    tile: u32,
}

/// A budget-driven recursive space partitioning (PR quadtree flavour).
#[derive(Clone, Debug, PartialEq)]
pub struct QuadtreePartitioner<const D: usize> {
    domain: Rect<D>,
    nodes: Vec<QtNode<D>>,
    /// Node index per tile id.
    leaves: Vec<u32>,
}

impl<const D: usize> QuadtreePartitioner<D> {
    /// Build over `rects`: starting from `domain` as a single tile, any
    /// region overlapped by more than `budget` rectangles is split into
    /// `2^D` equal children, recursively (capped at a fixed depth, and
    /// axes of zero extent are never split). `budget ≥ 1`.
    pub fn build(domain: Rect<D>, rects: &[Rect<D>], budget: usize) -> Self {
        assert!(budget >= 1, "load budget must be at least 1");
        assert!(domain.is_finite(), "partitioner domain must be finite");
        assert!(D <= 8, "2^D children per split: D above 8 is impractical");
        let mut qt = QuadtreePartitioner {
            domain,
            nodes: vec![QtNode {
                rect: domain,
                split: None,
                tile: 0,
            }],
            leaves: Vec::new(),
        };
        // Depth-first subdivision; each frame carries the indices of the
        // rectangles overlapping its region (multi-assignment).
        let all: Vec<u32> = (0..rects.len() as u32).collect();
        let mut stack = vec![(0u32, 0u32, all)];
        while let Some((node, depth, items)) = stack.pop() {
            let rect = qt.nodes[node as usize].rect;
            let splittable = (0..D).any(|i| rect.extent(i) > 0.0);
            if items.len() <= budget || depth >= MAX_DEPTH || !splittable {
                qt.nodes[node as usize].tile = qt.leaves.len() as u32;
                qt.leaves.push(node);
                continue;
            }
            let center = rect.center();
            let first = qt.nodes.len() as u32;
            for k in 0..1usize << D {
                let mut lo = [0.0; D];
                let mut hi = [0.0; D];
                for i in 0..D {
                    if k >> i & 1 == 1 {
                        lo[i] = center[i];
                        hi[i] = rect.hi[i];
                    } else {
                        lo[i] = rect.lo[i];
                        hi[i] = center[i];
                    }
                }
                qt.nodes.push(QtNode {
                    rect: Rect::new(Point(lo), Point(hi)),
                    split: None,
                    tile: 0,
                });
            }
            qt.nodes[node as usize].split = Some((center, first));
            for k in 0..1usize << D {
                let child = first + k as u32;
                let crect = qt.nodes[child as usize].rect;
                let sub: Vec<u32> = items
                    .iter()
                    .copied()
                    .filter(|&i| Self::clamp_rect(&domain, &rects[i as usize]).intersects(&crect))
                    .collect();
                stack.push((child, depth + 1, sub));
            }
        }
        qt
    }

    /// The partitioned domain.
    pub fn domain(&self) -> &Rect<D> {
        &self.domain
    }

    /// Depth of the deepest leaf (0 = the domain never split).
    pub fn depth(&self) -> u32 {
        fn rec<const D: usize>(qt: &QuadtreePartitioner<D>, node: u32) -> u32 {
            match qt.nodes[node as usize].split {
                None => 0,
                Some((_, first)) => {
                    (0..1u32 << D)
                        .map(|k| rec(qt, first + k))
                        .max()
                        .expect("2^D children")
                        + 1
                }
            }
        }
        rec(self, 0)
    }

    /// Clamp a point into `domain` component-wise (out-of-domain points
    /// belong to border tiles, like the grids).
    fn clamp_point(domain: &Rect<D>, p: &Point<D>) -> Point<D> {
        Point(std::array::from_fn(|i| {
            p[i].clamp(domain.lo[i], domain.hi[i])
        }))
    }

    /// Clamp a rectangle into `domain` corner-wise; a fully outside
    /// rectangle collapses onto the nearest border face.
    fn clamp_rect(domain: &Rect<D>, r: &Rect<D>) -> Rect<D> {
        Rect::new(
            Self::clamp_point(domain, &r.lo),
            Self::clamp_point(domain, &r.hi),
        )
    }
}

impl<const D: usize> Partitioner<D> for QuadtreePartitioner<D> {
    fn tile_count(&self) -> usize {
        self.leaves.len()
    }

    fn tile_of(&self, p: &Point<D>) -> usize {
        let p = Self::clamp_point(&self.domain, p);
        let mut node = 0u32;
        while let Some((center, first)) = self.nodes[node as usize].split {
            let mut k = 0usize;
            for i in 0..D {
                if p[i] >= center[i] {
                    k |= 1 << i;
                }
            }
            node = first + k as u32;
        }
        self.nodes[node as usize].tile as usize
    }

    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        let r = Self::clamp_rect(&self.domain, r);
        let mut tiles = Vec::new();
        let mut stack = vec![0u32];
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node as usize];
            if !n.rect.intersects(&r) {
                continue;
            }
            match n.split {
                None => tiles.push(n.tile as usize),
                Some((_, first)) => stack.extend((0..1u32 << D).map(|k| first + k)),
            }
        }
        tiles
    }

    fn tile_rect(&self, tile: usize) -> Rect<D> {
        self.nodes[self.leaves[tile] as usize].rect
    }
}

// Lives here rather than in `persist` because the node array is
// module-private. The fitted tree structure is encoded verbatim —
// node rects, split centers/child bases, leaf tile ids — so the
// decoded partitioner is bit-identical to the one the data was
// assigned under (re-fitting from data would not be: the budget
// heuristic is not a pure function of the surviving objects).
impl<const D: usize> crate::persist::PersistPartitioner for QuadtreePartitioner<D> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        crate::persist::put_rect(out, &self.domain);
        crate::persist::put_u32(out, self.nodes.len() as u32);
        for n in &self.nodes {
            crate::persist::put_rect(out, &n.rect);
            match n.split {
                None => out.push(0),
                Some((center, first)) => {
                    out.push(1);
                    crate::persist::put_point(out, &center);
                    crate::persist::put_u32(out, first);
                }
            }
            crate::persist::put_u32(out, n.tile);
        }
        crate::persist::put_u32(out, self.leaves.len() as u32);
        for &leaf in &self.leaves {
            crate::persist::put_u32(out, leaf);
        }
    }

    fn decode_blob(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let corrupt =
            |why: &str| crate::persist::PersistError::Corrupt(format!("quadtree blob: {why}"));
        let domain = r.rect::<D>()?;
        let node_count = r.u32()? as usize;
        if node_count == 0 {
            return Err(corrupt("no nodes"));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let rect = r.rect::<D>()?;
            let split = match r.u8()? {
                0 => None,
                1 => {
                    let center = r.point::<D>()?;
                    let first = r.u32()?;
                    if (first as usize) + (1 << D) > node_count {
                        return Err(corrupt("child range out of bounds"));
                    }
                    Some((center, first))
                }
                _ => return Err(corrupt("bad split tag")),
            };
            let tile = r.u32()?;
            nodes.push(QtNode { rect, split, tile });
        }
        let leaf_count = r.u32()? as usize;
        let mut leaves = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            let leaf = r.u32()?;
            if leaf as usize >= node_count {
                return Err(corrupt("leaf index out of bounds"));
            }
            leaves.push(leaf);
        }
        for (tile, &leaf) in leaves.iter().enumerate() {
            let n = &nodes[leaf as usize];
            if n.split.is_some() || n.tile as usize != tile {
                return Err(corrupt("leaf table disagrees with nodes"));
            }
        }
        Ok(QuadtreePartitioner {
            domain,
            nodes,
            leaves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::load_imbalance;
    use crate::UniformGrid;
    use cbb_geom::SplitMix64;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn domain() -> Rect<2> {
        r2(0.0, 0.0, 100.0, 100.0)
    }

    fn clustered(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let tight = rng.gen_range(0.0, 1.0) < 0.8;
                let (cx, cy, s) = if tight {
                    (20.0, 20.0, 5.0)
                } else {
                    (rng.gen_range(0.0, 95.0), rng.gen_range(0.0, 95.0), 0.0)
                };
                let x = (cx + rng.gen_range(-s, s + 1e-9)).clamp(0.0, 95.0);
                let y = (cy + rng.gen_range(-s, s + 1e-9)).clamp(0.0, 95.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.1, 3.0),
                    y + rng.gen_range(0.1, 3.0),
                )
            })
            .collect()
    }

    #[test]
    fn splits_only_where_the_data_is() {
        let data = clustered(2_000, 1);
        let qt = QuadtreePartitioner::build(domain(), &data, 200);
        assert!(qt.tile_count() > 4, "cluster never split");
        assert!(qt.depth() >= 2);
        // The cluster corner is covered by smaller tiles than empty space.
        let hot = qt.tile_rect(qt.tile_of(&Point([20.0, 20.0])));
        let cold = qt.tile_rect(qt.tile_of(&Point([80.0, 20.0])));
        assert!(hot.volume() < cold.volume());
    }

    #[test]
    fn every_point_owned_by_exactly_one_tile() {
        let data = clustered(1_500, 2);
        let qt = QuadtreePartitioner::build(domain(), &data, 100);
        let mut rng = SplitMix64::new(3);
        for _ in 0..2_000 {
            let p = Point([rng.gen_range(-30.0, 130.0), rng.gen_range(-30.0, 130.0)]);
            let owners = (0..qt.tile_count()).filter(|&t| qt.owns(t, &p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn leaves_tile_the_domain() {
        let data = clustered(1_000, 4);
        let qt = QuadtreePartitioner::build(domain(), &data, 64);
        let total: f64 = (0..qt.tile_count()).map(|t| qt.tile_rect(t).volume()).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn covering_contains_every_owned_tile() {
        let data = clustered(1_500, 5);
        let qt = QuadtreePartitioner::build(domain(), &data, 100);
        let mut rng = SplitMix64::new(6);
        for _ in 0..400 {
            let x = rng.gen_range(-10.0, 100.0);
            let y = rng.gen_range(-10.0, 100.0);
            let r = r2(
                x,
                y,
                x + rng.gen_range(0.0, 40.0),
                y + rng.gen_range(0.0, 40.0),
            );
            let covered = qt.covering_tiles(&r);
            for _ in 0..20 {
                let px = rng.gen_range(r.lo[0], r.hi[0] + 1e-9).min(r.hi[0]);
                let py = rng.gen_range(r.lo[1], r.hi[1] + 1e-9).min(r.hi[1]);
                let p = Point([px, py]);
                assert!(covered.contains(&qt.tile_of(&p)), "{p:?} of {r:?}");
            }
        }
    }

    #[test]
    fn respects_budget_where_splittable() {
        let data = clustered(3_000, 7);
        let budget = 150;
        let qt = QuadtreePartitioner::build(domain(), &data, budget);
        let assigned = qt.assign(&data);
        for (t, ids) in assigned.iter().enumerate() {
            // Leaves at the depth cap may exceed the budget; none exist
            // for this workload.
            assert!(
                ids.len() <= budget || qt.depth() >= 16,
                "tile {t} holds {} > budget {budget}",
                ids.len()
            );
        }
    }

    #[test]
    fn beats_uniform_on_clustered_imbalance() {
        let a = clustered(3_000, 8);
        let b = clustered(3_000, 9);
        let uniform = UniformGrid::new(domain(), 6);
        let qt = QuadtreePartitioner::build(domain(), &a, 150);
        let ui = load_imbalance(&uniform, &a, &b);
        let qi = load_imbalance(&qt, &a, &b);
        assert!(qi < ui, "quadtree {qi} not below uniform {ui}");
    }

    #[test]
    fn uniform_data_stays_coarse() {
        let mut rng = SplitMix64::new(10);
        let data: Vec<Rect<2>> = (0..500)
            .map(|_| {
                let x = rng.gen_range(0.0, 95.0);
                let y = rng.gen_range(0.0, 95.0);
                r2(x, y, x + 1.0, y + 1.0)
            })
            .collect();
        let qt = QuadtreePartitioner::build(domain(), &data, 1_000);
        assert_eq!(qt.tile_count(), 1, "under-budget domain must stay whole");
        assert_eq!(qt.tile_of(&Point([500.0, -3.0])), 0);
    }

    #[test]
    fn degenerate_domain_and_identical_objects_terminate() {
        // A point domain cannot split: one tile, regardless of budget.
        let point_domain = r2(5.0, 5.0, 5.0, 5.0);
        let data: Vec<Rect<2>> = (0..100).map(|_| point_domain).collect();
        let qt = QuadtreePartitioner::build(point_domain, &data, 3);
        assert_eq!(qt.tile_count(), 1);
        // Identical objects inside a real domain: the depth cap stops
        // the recursion even though the budget is never met.
        let stacked: Vec<Rect<2>> = (0..50).map(|_| r2(10.0, 10.0, 10.0, 10.0)).collect();
        let qt = QuadtreePartitioner::build(domain(), &stacked, 3);
        assert!(qt.depth() <= 16);
        let owners = (0..qt.tile_count())
            .filter(|&t| qt.owns(t, &Point([10.0, 10.0])))
            .count();
        assert_eq!(owners, 1);
    }
}
