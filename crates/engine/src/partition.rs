//! Uniform-grid spatial partitioning (PBSM-style).
//!
//! Rectangles are assigned to every tile they overlap
//! (*multi-assignment*), so each tile can be processed independently.
//! Exactness of global pair counts is restored by *reference-point
//! duplicate elimination*: every point of space is **owned** by exactly
//! one tile ([`UniformGrid::owns`]), a candidate pair is attributed to the
//! tile owning the lower corner of its intersection
//! ([`cbb_joins::reference_point`]), and that tile is guaranteed to have
//! both rectangles assigned — so each pair is counted exactly once.
//!
//! Points outside the grid's domain are clamped to the border tiles;
//! objects sticking out of the domain therefore still land in (border)
//! tiles and joins stay exact even for out-of-domain data.

use cbb_geom::{Point, Rect};

/// A uniform grid over a rectangular domain with `dims[i]` tiles along
/// axis `i`, tiles indexed row-major in `0..tile_count()`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformGrid<const D: usize> {
    domain: Rect<D>,
    dims: [usize; D],
}

impl<const D: usize> UniformGrid<D> {
    /// Grid with `per_dim` tiles along every axis (`per_dim ≥ 1`).
    pub fn new(domain: Rect<D>, per_dim: usize) -> Self {
        Self::with_dims(domain, [per_dim; D])
    }

    /// Grid with an explicit tile count per axis (each `≥ 1`).
    pub fn with_dims(domain: Rect<D>, dims: [usize; D]) -> Self {
        assert!(
            dims.iter().all(|&n| n >= 1),
            "every axis needs at least one tile"
        );
        assert!(domain.is_finite(), "grid domain must be finite");
        UniformGrid { domain, dims }
    }

    /// The partitioned domain.
    pub fn domain(&self) -> &Rect<D> {
        &self.domain
    }

    /// Tiles per axis.
    pub fn dims(&self) -> [usize; D] {
        self.dims
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// The cell coordinate containing `p` along each axis, clamped into
    /// the grid (so out-of-domain points map to border cells and the
    /// domain's upper face belongs to the last cell).
    pub fn cell_of(&self, p: &Point<D>) -> [usize; D] {
        let mut cell = [0usize; D];
        for i in 0..D {
            let extent = self.domain.extent(i);
            if extent <= 0.0 {
                continue;
            }
            let frac = (p[i] - self.domain.lo[i]) / extent;
            let scaled = (frac * self.dims[i] as f64).floor();
            cell[i] = (scaled.max(0.0) as usize).min(self.dims[i] - 1);
        }
        cell
    }

    /// Row-major tile index of a cell coordinate.
    pub fn tile_index(&self, cell: [usize; D]) -> usize {
        let mut idx = 0;
        for (c, n) in cell.into_iter().zip(self.dims) {
            debug_assert!(c < n);
            idx = idx * n + c;
        }
        idx
    }

    /// The unique tile owning point `p` (reference-point semantics).
    pub fn tile_of(&self, p: &Point<D>) -> usize {
        self.tile_index(self.cell_of(p))
    }

    /// Whether tile `tile` owns point `p`. Exactly one tile owns any
    /// point, which is what makes reference-point dedup exact.
    pub fn owns(&self, tile: usize, p: &Point<D>) -> bool {
        self.tile_of(p) == tile
    }

    /// Geometric bounds of a tile (closed rectangle; adjacent tiles share
    /// faces — ownership of the shared face is resolved by [`Self::owns`]).
    pub fn tile_rect(&self, tile: usize) -> Rect<D> {
        assert!(tile < self.tile_count(), "tile out of range");
        // Decompose the row-major index back into cell coordinates.
        let mut cell = [0usize; D];
        let mut rest = tile;
        for i in (0..D).rev() {
            cell[i] = rest % self.dims[i];
            rest /= self.dims[i];
        }
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            let width = self.domain.extent(i) / self.dims[i] as f64;
            lo[i] = self.domain.lo[i] + cell[i] as f64 * width;
            hi[i] = if cell[i] + 1 == self.dims[i] {
                self.domain.hi[i]
            } else {
                self.domain.lo[i] + (cell[i] + 1) as f64 * width
            };
        }
        Rect::new(Point(lo), Point(hi))
    }

    /// All tiles `r` overlaps (multi-assignment set): the row-major
    /// indices of the cell box spanned by `r`'s corners.
    pub fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        let lo_cell = self.cell_of(&r.lo);
        let hi_cell = self.cell_of(&r.hi);
        let mut tiles = Vec::with_capacity(
            (0..D)
                .map(|i| hi_cell[i] - lo_cell[i] + 1)
                .product::<usize>(),
        );
        let mut cell = lo_cell;
        loop {
            tiles.push(self.tile_index(cell));
            // Odometer increment over the cell box.
            let mut axis = D;
            loop {
                if axis == 0 {
                    return tiles;
                }
                axis -= 1;
                if cell[axis] < hi_cell[axis] {
                    cell[axis] += 1;
                    break;
                }
                cell[axis] = lo_cell[axis];
            }
        }
    }

    /// Multi-assign every rectangle to the tiles it overlaps. Returns one
    /// index list per tile, preserving input order within a tile; indices
    /// are `u32` (the same id space as `cbb_rtree::DataId`).
    pub fn assign(&self, rects: &[Rect<D>]) -> Vec<Vec<u32>> {
        assert!(
            rects.len() <= u32::MAX as usize,
            "object count exceeds the u32 id space"
        );
        let mut per_tile = vec![Vec::new(); self.tile_count()];
        for (i, r) in rects.iter().enumerate() {
            for t in self.covering_tiles(r) {
                per_tile[t].push(i as u32);
            }
        }
        per_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::SplitMix64;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn grid4() -> UniformGrid<2> {
        UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 4)
    }

    #[test]
    fn tile_rects_tile_the_domain() {
        let g = grid4();
        assert_eq!(g.tile_count(), 16);
        let total: f64 = (0..16).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 10_000.0).abs() < 1e-9);
        // Round-trip: the center of every tile maps back to that tile.
        for t in 0..16 {
            assert_eq!(g.tile_of(&g.tile_rect(t).center()), t);
            assert!(g.owns(t, &g.tile_rect(t).center()));
        }
    }

    #[test]
    fn every_point_owned_by_exactly_one_tile() {
        let g = grid4();
        let mut rng = SplitMix64::new(9);
        for _ in 0..2_000 {
            // Include out-of-domain points: clamping must still pick one.
            let p = Point([rng.gen_range(-20.0, 120.0), rng.gen_range(-20.0, 120.0)]);
            let owners = (0..g.tile_count()).filter(|&t| g.owns(t, &p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn boundary_points_resolve_to_one_side() {
        let g = grid4();
        // x = 25 is the face between columns 0 and 1: owned by column 1.
        assert_eq!(g.cell_of(&Point([25.0, 10.0])), [1, 0]);
        // The domain's upper corner belongs to the last tile.
        assert_eq!(g.cell_of(&Point([100.0, 100.0])), [3, 3]);
        // Outside points clamp to border cells.
        assert_eq!(g.cell_of(&Point([-5.0, 105.0])), [0, 3]);
    }

    #[test]
    fn covering_tiles_matches_geometry() {
        let g = grid4();
        let mut rng = SplitMix64::new(10);
        for _ in 0..500 {
            let x = rng.gen_range(-10.0, 100.0);
            let y = rng.gen_range(-10.0, 100.0);
            let r = r2(
                x,
                y,
                x + rng.gen_range(0.1, 60.0),
                y + rng.gen_range(0.1, 60.0),
            );
            let covered = g.covering_tiles(&r);
            // Every covered tile geometrically intersects r once r is
            // clamped to the domain (fully outside rects clamp to border
            // tiles they do not touch — that is the intended semantics).
            if let Some(clamped) = r.intersection(g.domain()) {
                for &t in &covered {
                    let tile = g.tile_rect(t);
                    assert!(
                        tile.intersects(&clamped),
                        "tile {t} {tile:?} does not meet {clamped:?}"
                    );
                }
            }
            // And no tile strictly containing a piece of r is missed.
            for t in 0..g.tile_count() {
                if g.tile_rect(t)
                    .intersection(&r)
                    .is_some_and(|i| i.volume() > 1e-12)
                {
                    assert!(covered.contains(&t), "missed tile {t} for {r:?}");
                }
            }
        }
    }

    #[test]
    fn spanning_object_lands_in_all_its_tiles() {
        let g = grid4();
        let r = r2(20.0, 20.0, 55.0, 30.0); // columns 0..=2 × rows 0..=1
        let assigned = g.assign(&[r]);
        let tiles: Vec<usize> = (0..16).filter(|&t| !assigned[t].is_empty()).collect();
        assert_eq!(tiles.len(), 6);
        for &t in &tiles {
            assert_eq!(assigned[t], vec![0]);
        }
    }

    #[test]
    fn degenerate_1x1_grid_owns_everything() {
        let g = UniformGrid::new(r2(0.0, 0.0, 10.0, 10.0), 1);
        assert_eq!(g.tile_count(), 1);
        assert!(g.owns(0, &Point([3.0, 3.0])));
        assert!(g.owns(0, &Point([-100.0, 100.0])));
        assert_eq!(g.covering_tiles(&r2(2.0, 2.0, 8.0, 8.0)), vec![0]);
    }

    #[test]
    fn reference_point_ownership_is_covered_by_both_sides() {
        // The invariant the join's exactness rests on: for any
        // intersecting pair, the tile owning the reference point is in
        // the covering set of both rectangles.
        let g = grid4();
        let mut rng = SplitMix64::new(11);
        for _ in 0..1_000 {
            let ax = rng.gen_range(-10.0, 100.0);
            let ay = rng.gen_range(-10.0, 100.0);
            let a = r2(
                ax,
                ay,
                ax + rng.gen_range(0.1, 50.0),
                ay + rng.gen_range(0.1, 50.0),
            );
            let bx = rng.gen_range(-10.0, 100.0);
            let by = rng.gen_range(-10.0, 100.0);
            let b = r2(
                bx,
                by,
                bx + rng.gen_range(0.1, 50.0),
                by + rng.gen_range(0.1, 50.0),
            );
            if !a.intersects(&b) {
                continue;
            }
            let owner = g.tile_of(&cbb_joins::reference_point(&a, &b));
            assert!(g.covering_tiles(&a).contains(&owner));
            assert!(g.covering_tiles(&b).contains(&owner));
        }
    }

    #[test]
    fn rectangular_grids_work() {
        let g = UniformGrid::with_dims(r2(0.0, 0.0, 100.0, 50.0), [5, 2]);
        assert_eq!(g.tile_count(), 10);
        assert_eq!(g.dims(), [5, 2]);
        let total: f64 = (0..10).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn assign_is_exhaustive() {
        let g = grid4();
        let mut rng = SplitMix64::new(12);
        let rects: Vec<Rect<2>> = (0..300)
            .map(|_| {
                let x = rng.gen_range(0.0, 95.0);
                let y = rng.gen_range(0.0, 95.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.1, 30.0),
                    y + rng.gen_range(0.1, 30.0),
                )
            })
            .collect();
        let assigned = g.assign(&rects);
        assert_eq!(assigned.len(), 16);
        // Every object appears at least once; ids stay in range.
        let mut seen = vec![false; rects.len()];
        for list in &assigned {
            for &i in list {
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
