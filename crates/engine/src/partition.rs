//! Spatial partitioning: the [`Partitioner`] contract and the PBSM-style
//! [`UniformGrid`].
//!
//! Rectangles are assigned to every tile they overlap
//! (*multi-assignment*), so each tile can be processed independently.
//! Exactness of global pair counts is restored by *reference-point
//! duplicate elimination*: every point of space is **owned** by exactly
//! one tile ([`Partitioner::owns`]), a candidate pair is attributed to the
//! tile owning the lower corner of its intersection
//! ([`cbb_joins::reference_point`]), and that tile is guaranteed to have
//! both rectangles assigned — so each pair is counted exactly once.
//!
//! Points outside a partitioner's domain are clamped to the border tiles;
//! objects sticking out of the domain therefore still land in (border)
//! tiles and joins stay exact even for out-of-domain data.
//!
//! Three implementations ship with the engine:
//!
//! | partitioner | boundaries | best for |
//! |---|---|---|
//! | [`UniformGrid`] | equal-width | uniform data, zero build cost |
//! | [`crate::AdaptiveGrid`] | per-axis data quantiles | skewed data, grid-shaped tiles |
//! | [`crate::QuadtreePartitioner`] | recursive region splits | heavily clustered data |

use cbb_geom::{Point, Rect};

/// Monotone version counter of a dataset. Everything derived from the
/// data — per-tile trees above all — is keyed by the version it was
/// built from, so caches (see [`crate::join::ForestCache`]) can serve
/// repeat requests without rebuilding and invalidate exactly when the
/// data changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataVersion(pub u64);

impl DataVersion {
    /// The initial version of a freshly loaded dataset.
    pub fn initial() -> Self {
        DataVersion(0)
    }

    /// Advance to the next version (call on every data mutation).
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// The version after this one.
    pub fn next(self) -> Self {
        DataVersion(self.0 + 1)
    }
}

/// The contract a spatial partitioner must honour for the engine's
/// reference-point duplicate elimination to stay exact:
///
/// 1. **Total ownership** — [`Self::tile_of`] maps *every* point (even
///    out-of-domain ones) to exactly one tile in `0..tile_count()`.
/// 2. **Covering consistency** — for any rectangle `r`,
///    [`Self::covering_tiles`] contains `tile_of(p)` for every point
///    `p ∈ r`. Since the reference point of an intersecting pair lies in
///    both rectangles, the owning tile then sees both sides.
///
/// Both properties are exercised by the engine's property tests for every
/// implementation (`crates/engine/tests/partition_props.rs`).
pub trait Partitioner<const D: usize>: Sync {
    /// Total number of tiles.
    fn tile_count(&self) -> usize;

    /// The unique tile owning point `p` (reference-point semantics).
    fn tile_of(&self, p: &Point<D>) -> usize;

    /// All tiles `r` overlaps (multi-assignment set). Must be a superset
    /// of the tiles owning any point of `r`.
    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize>;

    /// Geometric bounds of a tile (closed rectangle; adjacent tiles share
    /// faces — ownership of the shared face is resolved by [`Self::owns`]).
    fn tile_rect(&self, tile: usize) -> Rect<D>;

    /// Whether tile `tile` owns point `p`. Exactly one tile owns any
    /// point, which is what makes reference-point dedup exact.
    fn owns(&self, tile: usize, p: &Point<D>) -> bool {
        self.tile_of(p) == tile
    }

    /// Multi-assign every rectangle to the tiles it overlaps. Returns one
    /// index list per tile, preserving input order within a tile; indices
    /// are `u32` (the same id space as `cbb_rtree::DataId`).
    fn assign(&self, rects: &[Rect<D>]) -> Vec<Vec<u32>> {
        assert!(
            rects.len() <= u32::MAX as usize,
            "object count exceeds the u32 id space"
        );
        let mut per_tile = vec![Vec::new(); self.tile_count()];
        for (i, r) in rects.iter().enumerate() {
            for t in self.covering_tiles(r) {
                per_tile[t].push(i as u32);
            }
        }
        per_tile
    }
}

/// Row-major tile index of a cell coordinate under per-axis cell counts.
pub(crate) fn row_major_index<const D: usize>(cell: [usize; D], dims: [usize; D]) -> usize {
    let mut idx = 0;
    for (c, n) in cell.into_iter().zip(dims) {
        debug_assert!(c < n);
        idx = idx * n + c;
    }
    idx
}

/// Decompose a row-major tile index back into cell coordinates.
pub(crate) fn row_major_cell<const D: usize>(tile: usize, dims: [usize; D]) -> [usize; D] {
    let mut cell = [0usize; D];
    let mut rest = tile;
    for i in (0..D).rev() {
        cell[i] = rest % dims[i];
        rest /= dims[i];
    }
    cell
}

/// Row-major indices of every cell in the box `lo_cell..=hi_cell`
/// (odometer enumeration, the multi-assignment set of a rectangle).
pub(crate) fn cell_box_tiles<const D: usize>(
    lo_cell: [usize; D],
    hi_cell: [usize; D],
    dims: [usize; D],
) -> Vec<usize> {
    let mut tiles = Vec::with_capacity(
        (0..D)
            .map(|i| hi_cell[i] - lo_cell[i] + 1)
            .product::<usize>(),
    );
    let mut cell = lo_cell;
    loop {
        tiles.push(row_major_index(cell, dims));
        // Odometer increment over the cell box.
        let mut axis = D;
        loop {
            if axis == 0 {
                return tiles;
            }
            axis -= 1;
            if cell[axis] < hi_cell[axis] {
                cell[axis] += 1;
                break;
            }
            cell[axis] = lo_cell[axis];
        }
    }
}

/// Load-imbalance metric of a partitioning for a join workload: estimated
/// per-tile work is `|left assigned| × |right assigned|` (the size of the
/// candidate cross product), and the imbalance is **max / mean** over the
/// tiles that can produce pairs. `1.0` is a perfect balance; a single hot
/// tile holding half the work of a 64-tile grid scores ≈ 32.
///
/// This is the metric `BENCH_skew.json` reports for uniform vs adaptive
/// partitioning.
pub fn load_imbalance<const D: usize, P: Partitioner<D>>(
    partitioner: &P,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> f64 {
    let la = partitioner.assign(left);
    let ra = partitioner.assign(right);
    let weights: Vec<f64> = la
        .iter()
        .zip(&ra)
        .map(|(l, r)| l.len() as f64 * r.len() as f64)
        .filter(|&w| w > 0.0)
        .collect();
    if weights.is_empty() {
        return 1.0;
    }
    let max = weights.iter().cloned().fold(0.0f64, f64::max);
    let mean = weights.iter().sum::<f64>() / weights.len() as f64;
    max / mean
}

/// Any of the engine's three partitioners behind one concrete type —
/// what lets a single catalog serve datasets with **different
/// partitioner kinds** side by side (a uniform grid for a uniform
/// layer, a quadtree for a heavily clustered one) while everything
/// downstream stays generic over one `P`.
///
/// Dispatch is a `match` per call; the partitioner contract (total
/// ownership, covering consistency) is inherited unchanged from the
/// wrapped implementation, so joins and reference-point dedup stay
/// exact. Equality (used by the serve layer to decide whether a
/// cross-dataset join can borrow the probe side's cached forest)
/// compares kind *and* fitted boundaries.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyPartitioner<const D: usize> {
    /// An equal-width [`UniformGrid`].
    Uniform(UniformGrid<D>),
    /// A sample-quantile [`crate::AdaptiveGrid`].
    Adaptive(crate::AdaptiveGrid<D>),
    /// A budget-driven [`crate::QuadtreePartitioner`].
    Quadtree(crate::QuadtreePartitioner<D>),
}

impl<const D: usize> From<UniformGrid<D>> for AnyPartitioner<D> {
    fn from(p: UniformGrid<D>) -> Self {
        AnyPartitioner::Uniform(p)
    }
}

impl<const D: usize> From<crate::AdaptiveGrid<D>> for AnyPartitioner<D> {
    fn from(p: crate::AdaptiveGrid<D>) -> Self {
        AnyPartitioner::Adaptive(p)
    }
}

impl<const D: usize> From<crate::QuadtreePartitioner<D>> for AnyPartitioner<D> {
    fn from(p: crate::QuadtreePartitioner<D>) -> Self {
        AnyPartitioner::Quadtree(p)
    }
}

impl<const D: usize> Partitioner<D> for AnyPartitioner<D> {
    fn tile_count(&self) -> usize {
        match self {
            AnyPartitioner::Uniform(p) => Partitioner::tile_count(p),
            AnyPartitioner::Adaptive(p) => Partitioner::tile_count(p),
            AnyPartitioner::Quadtree(p) => Partitioner::tile_count(p),
        }
    }

    fn tile_of(&self, p: &Point<D>) -> usize {
        match self {
            AnyPartitioner::Uniform(g) => Partitioner::tile_of(g, p),
            AnyPartitioner::Adaptive(g) => Partitioner::tile_of(g, p),
            AnyPartitioner::Quadtree(g) => Partitioner::tile_of(g, p),
        }
    }

    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        match self {
            AnyPartitioner::Uniform(p) => Partitioner::covering_tiles(p, r),
            AnyPartitioner::Adaptive(p) => Partitioner::covering_tiles(p, r),
            AnyPartitioner::Quadtree(p) => Partitioner::covering_tiles(p, r),
        }
    }

    fn tile_rect(&self, tile: usize) -> Rect<D> {
        match self {
            AnyPartitioner::Uniform(p) => Partitioner::tile_rect(p, tile),
            AnyPartitioner::Adaptive(p) => Partitioner::tile_rect(p, tile),
            AnyPartitioner::Quadtree(p) => Partitioner::tile_rect(p, tile),
        }
    }
}

/// A uniform grid over a rectangular domain with `dims[i]` tiles along
/// axis `i`, tiles indexed row-major in `0..tile_count()`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformGrid<const D: usize> {
    domain: Rect<D>,
    dims: [usize; D],
}

impl<const D: usize> UniformGrid<D> {
    /// Grid with `per_dim` tiles along every axis (`per_dim ≥ 1`).
    pub fn new(domain: Rect<D>, per_dim: usize) -> Self {
        Self::with_dims(domain, [per_dim; D])
    }

    /// Grid with an explicit tile count per axis (each `≥ 1`).
    pub fn with_dims(domain: Rect<D>, dims: [usize; D]) -> Self {
        assert!(
            dims.iter().all(|&n| n >= 1),
            "every axis needs at least one tile"
        );
        assert!(domain.is_finite(), "grid domain must be finite");
        UniformGrid { domain, dims }
    }

    /// The partitioned domain.
    pub fn domain(&self) -> &Rect<D> {
        &self.domain
    }

    /// Tiles per axis.
    pub fn dims(&self) -> [usize; D] {
        self.dims
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// The cell coordinate containing `p` along each axis, clamped into
    /// the grid (so out-of-domain points map to border cells and the
    /// domain's upper face belongs to the last cell).
    ///
    /// A zero-extent axis has zero cell width; dividing by it would poison
    /// the index with NaN/∞, so such an axis clamps to cell 0 — the whole
    /// (degenerate) axis is one cell regardless of `dims`.
    pub fn cell_of(&self, p: &Point<D>) -> [usize; D] {
        let mut cell = [0usize; D];
        for i in 0..D {
            let extent = self.domain.extent(i);
            if extent.is_nan() || extent <= 0.0 {
                // Zero-extent (or, defensively, NaN-extent) axis: clamp
                // instead of dividing by the zero cell width.
                continue;
            }
            let frac = (p[i] - self.domain.lo[i]) / extent;
            let scaled = (frac * self.dims[i] as f64).floor();
            // `f64::max` returns the non-NaN operand, so a NaN `scaled`
            // (e.g. NaN input coordinate) becomes 0.0 here — in range.
            cell[i] = (scaled.max(0.0) as usize).min(self.dims[i] - 1);
        }
        cell
    }

    /// Row-major tile index of a cell coordinate.
    pub fn tile_index(&self, cell: [usize; D]) -> usize {
        row_major_index(cell, self.dims)
    }

    /// The unique tile owning point `p` (reference-point semantics).
    pub fn tile_of(&self, p: &Point<D>) -> usize {
        self.tile_index(self.cell_of(p))
    }

    /// Whether tile `tile` owns point `p`.
    pub fn owns(&self, tile: usize, p: &Point<D>) -> bool {
        self.tile_of(p) == tile
    }

    /// Geometric bounds of a tile.
    pub fn tile_rect(&self, tile: usize) -> Rect<D> {
        assert!(tile < self.tile_count(), "tile out of range");
        let cell = row_major_cell(tile, self.dims);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            let width = self.domain.extent(i) / self.dims[i] as f64;
            lo[i] = self.domain.lo[i] + cell[i] as f64 * width;
            hi[i] = if cell[i] + 1 == self.dims[i] {
                self.domain.hi[i]
            } else {
                self.domain.lo[i] + (cell[i] + 1) as f64 * width
            };
        }
        Rect::new(Point(lo), Point(hi))
    }

    /// All tiles `r` overlaps (multi-assignment set): the row-major
    /// indices of the cell box spanned by `r`'s corners.
    pub fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        cell_box_tiles(self.cell_of(&r.lo), self.cell_of(&r.hi), self.dims)
    }

    /// Multi-assign every rectangle to the tiles it overlaps.
    pub fn assign(&self, rects: &[Rect<D>]) -> Vec<Vec<u32>> {
        Partitioner::assign(self, rects)
    }
}

impl<const D: usize> Partitioner<D> for UniformGrid<D> {
    fn tile_count(&self) -> usize {
        UniformGrid::tile_count(self)
    }

    fn tile_of(&self, p: &Point<D>) -> usize {
        UniformGrid::tile_of(self, p)
    }

    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        UniformGrid::covering_tiles(self, r)
    }

    fn tile_rect(&self, tile: usize) -> Rect<D> {
        UniformGrid::tile_rect(self, tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::SplitMix64;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn grid4() -> UniformGrid<2> {
        UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 4)
    }

    #[test]
    fn tile_rects_tile_the_domain() {
        let g = grid4();
        assert_eq!(g.tile_count(), 16);
        let total: f64 = (0..16).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 10_000.0).abs() < 1e-9);
        // Round-trip: the center of every tile maps back to that tile.
        for t in 0..16 {
            assert_eq!(g.tile_of(&g.tile_rect(t).center()), t);
            assert!(g.owns(t, &g.tile_rect(t).center()));
        }
    }

    #[test]
    fn every_point_owned_by_exactly_one_tile() {
        let g = grid4();
        let mut rng = SplitMix64::new(9);
        for _ in 0..2_000 {
            // Include out-of-domain points: clamping must still pick one.
            let p = Point([rng.gen_range(-20.0, 120.0), rng.gen_range(-20.0, 120.0)]);
            let owners = (0..g.tile_count()).filter(|&t| g.owns(t, &p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn boundary_points_resolve_to_one_side() {
        let g = grid4();
        // x = 25 is the face between columns 0 and 1: owned by column 1.
        assert_eq!(g.cell_of(&Point([25.0, 10.0])), [1, 0]);
        // The domain's upper corner belongs to the last tile.
        assert_eq!(g.cell_of(&Point([100.0, 100.0])), [3, 3]);
        // Outside points clamp to border cells.
        assert_eq!(g.cell_of(&Point([-5.0, 105.0])), [0, 3]);
    }

    #[test]
    fn covering_tiles_matches_geometry() {
        let g = grid4();
        let mut rng = SplitMix64::new(10);
        for _ in 0..500 {
            let x = rng.gen_range(-10.0, 100.0);
            let y = rng.gen_range(-10.0, 100.0);
            let r = r2(
                x,
                y,
                x + rng.gen_range(0.1, 60.0),
                y + rng.gen_range(0.1, 60.0),
            );
            let covered = g.covering_tiles(&r);
            // Every covered tile geometrically intersects r once r is
            // clamped to the domain (fully outside rects clamp to border
            // tiles they do not touch — that is the intended semantics).
            if let Some(clamped) = r.intersection(g.domain()) {
                for &t in &covered {
                    let tile = g.tile_rect(t);
                    assert!(
                        tile.intersects(&clamped),
                        "tile {t} {tile:?} does not meet {clamped:?}"
                    );
                }
            }
            // And no tile strictly containing a piece of r is missed.
            for t in 0..g.tile_count() {
                if g.tile_rect(t)
                    .intersection(&r)
                    .is_some_and(|i| i.volume() > 1e-12)
                {
                    assert!(covered.contains(&t), "missed tile {t} for {r:?}");
                }
            }
        }
    }

    #[test]
    fn spanning_object_lands_in_all_its_tiles() {
        let g = grid4();
        let r = r2(20.0, 20.0, 55.0, 30.0); // columns 0..=2 × rows 0..=1
        let assigned = g.assign(&[r]);
        let tiles: Vec<usize> = (0..16).filter(|&t| !assigned[t].is_empty()).collect();
        assert_eq!(tiles.len(), 6);
        for &t in &tiles {
            assert_eq!(assigned[t], vec![0]);
        }
    }

    #[test]
    fn degenerate_1x1_grid_owns_everything() {
        let g = UniformGrid::new(r2(0.0, 0.0, 10.0, 10.0), 1);
        assert_eq!(g.tile_count(), 1);
        assert!(g.owns(0, &Point([3.0, 3.0])));
        assert!(g.owns(0, &Point([-100.0, 100.0])));
        assert_eq!(g.covering_tiles(&r2(2.0, 2.0, 8.0, 8.0)), vec![0]);
    }

    #[test]
    fn zero_extent_domain_axis_clamps_instead_of_dividing() {
        // Regression: all data on the line y = 5 → the domain MBB has
        // zero extent in y. cell_of must not divide by the zero cell
        // width; the y axis collapses to a single cell and the x axis
        // still partitions normally.
        let g = UniformGrid::with_dims(r2(0.0, 5.0, 100.0, 5.0), [4, 4]);
        for (p, want) in [
            (Point([10.0, 5.0]), [0usize, 0usize]),
            (Point([99.0, 5.0]), [3, 0]),
            // Off-line and out-of-domain points still clamp to a cell.
            (Point([50.0, 7.0]), [2, 0]),
            (Point([-3.0, -9.0]), [0, 0]),
        ] {
            let cell = g.cell_of(&p);
            assert!(cell.iter().zip(g.dims()).all(|(&c, n)| c < n));
            assert_eq!(cell, want, "point {p:?}");
        }
        // Exactly-one-owner still holds on and off the degenerate axis.
        let mut rng = SplitMix64::new(77);
        for _ in 0..500 {
            let p = Point([rng.gen_range(-10.0, 110.0), rng.gen_range(0.0, 10.0)]);
            let owners = (0..g.tile_count()).filter(|&t| g.owns(t, &p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
        // covering_tiles stays consistent with ownership for rects that
        // cross (and stick out of) the degenerate axis.
        let r = r2(20.0, 4.0, 80.0, 6.0);
        let covered = g.covering_tiles(&r);
        for &p in &[Point([20.0, 5.0]), Point([50.0, 5.0]), Point([80.0, 5.0])] {
            assert!(covered.contains(&g.tile_of(&p)), "missing owner of {p:?}");
        }
        // Fully degenerate domain (a single point) still works.
        let point_grid = UniformGrid::with_dims(r2(3.0, 3.0, 3.0, 3.0), [8, 8]);
        assert_eq!(point_grid.tile_of(&Point([3.0, 3.0])), 0);
        assert_eq!(point_grid.tile_of(&Point([100.0, -100.0])), 0);
        assert_eq!(point_grid.covering_tiles(&r2(0.0, 0.0, 9.0, 9.0)), vec![0]);
    }

    #[test]
    fn reference_point_ownership_is_covered_by_both_sides() {
        // The invariant the join's exactness rests on: for any
        // intersecting pair, the tile owning the reference point is in
        // the covering set of both rectangles.
        let g = grid4();
        let mut rng = SplitMix64::new(11);
        for _ in 0..1_000 {
            let ax = rng.gen_range(-10.0, 100.0);
            let ay = rng.gen_range(-10.0, 100.0);
            let a = r2(
                ax,
                ay,
                ax + rng.gen_range(0.1, 50.0),
                ay + rng.gen_range(0.1, 50.0),
            );
            let bx = rng.gen_range(-10.0, 100.0);
            let by = rng.gen_range(-10.0, 100.0);
            let b = r2(
                bx,
                by,
                bx + rng.gen_range(0.1, 50.0),
                by + rng.gen_range(0.1, 50.0),
            );
            if !a.intersects(&b) {
                continue;
            }
            let owner = g.tile_of(&cbb_joins::reference_point(&a, &b));
            assert!(g.covering_tiles(&a).contains(&owner));
            assert!(g.covering_tiles(&b).contains(&owner));
        }
    }

    #[test]
    fn rectangular_grids_work() {
        let g = UniformGrid::with_dims(r2(0.0, 0.0, 100.0, 50.0), [5, 2]);
        assert_eq!(g.tile_count(), 10);
        assert_eq!(g.dims(), [5, 2]);
        let total: f64 = (0..10).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn assign_is_exhaustive() {
        let g = grid4();
        let mut rng = SplitMix64::new(12);
        let rects: Vec<Rect<2>> = (0..300)
            .map(|_| {
                let x = rng.gen_range(0.0, 95.0);
                let y = rng.gen_range(0.0, 95.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.1, 30.0),
                    y + rng.gen_range(0.1, 30.0),
                )
            })
            .collect();
        let assigned = g.assign(&rects);
        assert_eq!(assigned.len(), 16);
        // Every object appears at least once; ids stay in range.
        let mut seen = vec![false; rects.len()];
        for list in &assigned {
            for &i in list {
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn data_version_is_monotone() {
        let mut v = DataVersion::initial();
        assert_eq!(v, DataVersion(0));
        assert_eq!(v.next(), DataVersion(1));
        v.bump();
        v.bump();
        assert_eq!(v, DataVersion(2));
        assert!(DataVersion(1) < DataVersion(2));
    }

    #[test]
    fn load_imbalance_flags_hot_tiles() {
        let g = UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 2);
        // Perfectly spread: one object per tile on each side.
        let spread: Vec<Rect<2>> = (0..4)
            .map(|t| {
                let c = g.tile_rect(t).center();
                Rect::new(c, c)
            })
            .collect();
        assert!((load_imbalance(&g, &spread, &spread) - 1.0).abs() < 1e-9);
        // Eight objects clumped into tile 0 plus the spread baseline:
        // tile 0 outweighs the rest 9:1.
        let mut clumped = spread.clone();
        clumped.extend((0..8).map(|_| r2(1.0, 1.0, 2.0, 2.0)));
        let imb = load_imbalance(&g, &clumped, &spread);
        assert!((imb - 3.0).abs() < 1e-9, "imbalance {imb}");
        // Empty side: defined as balanced.
        assert_eq!(load_imbalance(&g, &[], &spread), 1.0);
    }
}
