//! Sample-based adaptive grid: per-axis tile boundaries from data
//! quantiles.
//!
//! A [`UniformGrid`](crate::UniformGrid) over skewed data concentrates
//! most objects in a few tiles, so one dense tile straggles the whole
//! partitioned join (Aji et al., *Effective Spatial Data Partitioning for
//! Scalable Query Processing*). The [`AdaptiveGrid`] keeps the grid's
//! cheap row-major indexing but places the cut positions along each axis
//! at the **quantiles of a data sample**: every column/row then holds
//! roughly the same number of object centers, which flattens per-tile
//! load for clustered and Zipfian placements.
//!
//! Cells are addressed by binary search over the cut arrays, so lookups
//! are `O(log tiles_per_axis)` per axis, ownership is total (any point —
//! in-domain or not — maps to exactly one tile), and the engine's
//! reference-point duplicate elimination applies unchanged.

use cbb_geom::{Coord, Point, Rect};

use crate::partition::{cell_box_tiles, row_major_cell, row_major_index, Partitioner};

/// Cap on per-axis sample size: quantile estimates stabilise long before
/// this, and it keeps construction `O(SAMPLE_CAP log SAMPLE_CAP)` per
/// axis independent of dataset size.
const SAMPLE_CAP: usize = 4_096;

/// A grid with per-axis boundaries at data quantiles. Tiles are indexed
/// row-major like [`crate::UniformGrid`]; only the cut positions differ.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveGrid<const D: usize> {
    domain: Rect<D>,
    /// Interior cut positions per axis, sorted ascending, inside the
    /// domain. Axis `i` has `cuts[i].len() + 1` cells: values `< cuts[0]`
    /// fall in cell 0, values `≥ cuts.last()` in the last cell (cut
    /// positions belong to the upper cell, mirroring the uniform grid's
    /// boundary rule).
    cuts: [Vec<Coord>; D],
}

impl<const D: usize> AdaptiveGrid<D> {
    /// Build a grid with `dims[i]` tiles along axis `i`, boundaries at the
    /// per-axis quantiles of the centers of `sample`. The sample is
    /// typically the join input itself (or any subset — construction
    /// subsamples to a cap internally). An empty sample degrades to
    /// uniform, equal-width cuts.
    pub fn from_sample(domain: Rect<D>, dims: [usize; D], sample: &[Rect<D>]) -> Self {
        assert!(
            dims.iter().all(|&n| n >= 1),
            "every axis needs at least one tile"
        );
        assert!(domain.is_finite(), "grid domain must be finite");
        let stride = (sample.len() / SAMPLE_CAP).max(1);
        let cuts = std::array::from_fn(|i| {
            if dims[i] == 1 {
                return Vec::new();
            }
            let mut values: Vec<Coord> = sample
                .iter()
                .step_by(stride)
                .map(|r| {
                    let c = (r.lo[i] + r.hi[i]) / 2.0;
                    c.clamp(domain.lo[i], domain.hi[i])
                })
                .collect();
            if values.is_empty() {
                // No data: equal-width cuts (uniform-grid behaviour).
                return (1..dims[i])
                    .map(|k| domain.lo[i] + domain.extent(i) * k as Coord / dims[i] as Coord)
                    .collect();
            }
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
            (1..dims[i])
                .map(|k| values[k * values.len() / dims[i]])
                .collect()
        });
        AdaptiveGrid { domain, cuts }
    }

    /// The partitioned domain.
    pub fn domain(&self) -> &Rect<D> {
        &self.domain
    }

    /// Tiles per axis.
    pub fn dims(&self) -> [usize; D] {
        std::array::from_fn(|i| self.cuts[i].len() + 1)
    }

    /// The interior cut positions along `axis` (sorted; may contain
    /// duplicates when the sample has heavy ties — the cells between
    /// duplicate cuts are empty and simply never receive work).
    pub fn cuts(&self, axis: usize) -> &[Coord] {
        &self.cuts[axis]
    }

    /// The cell coordinate containing `p` along each axis. Total by
    /// construction: binary search clamps out-of-domain points to the
    /// border cells with no division anywhere.
    pub fn cell_of(&self, p: &Point<D>) -> [usize; D] {
        std::array::from_fn(|i| self.cuts[i].partition_point(|&c| c <= p[i]))
    }

    /// The unique tile owning point `p`.
    pub fn tile_of(&self, p: &Point<D>) -> usize {
        row_major_index(self.cell_of(p), self.dims())
    }
}

impl<const D: usize> Partitioner<D> for AdaptiveGrid<D> {
    fn tile_count(&self) -> usize {
        self.dims().iter().product()
    }

    fn tile_of(&self, p: &Point<D>) -> usize {
        AdaptiveGrid::tile_of(self, p)
    }

    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        cell_box_tiles(self.cell_of(&r.lo), self.cell_of(&r.hi), self.dims())
    }

    fn tile_rect(&self, tile: usize) -> Rect<D> {
        let dims = self.dims();
        assert!(tile < dims.iter().product::<usize>(), "tile out of range");
        let cell = row_major_cell(tile, dims);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = if cell[i] == 0 {
                self.domain.lo[i]
            } else {
                self.cuts[i][cell[i] - 1]
            };
            hi[i] = if cell[i] + 1 == dims[i] {
                self.domain.hi[i]
            } else {
                self.cuts[i][cell[i]]
            };
            // Duplicate cuts make degenerate (empty) interior cells;
            // out-of-order never happens because cuts are sorted.
            if hi[i] < lo[i] {
                hi[i] = lo[i];
            }
        }
        Rect::new(Point(lo), Point(hi))
    }
}

// Lives here rather than in `persist` because the cut arrays are
// module-private: the codec is the only way to rebuild a fitted grid
// from parts, and keeping it next to the invariants it must respect
// (sorted, in-domain cuts) keeps them honest.
impl<const D: usize> crate::persist::PersistPartitioner for AdaptiveGrid<D> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        crate::persist::put_rect(out, &self.domain);
        for axis in 0..D {
            crate::persist::put_u32(out, self.cuts[axis].len() as u32);
            for &c in &self.cuts[axis] {
                crate::persist::put_f64(out, c);
            }
        }
    }

    fn decode_blob(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let domain = r.rect::<D>()?;
        let mut cuts: [Vec<Coord>; D] = std::array::from_fn(|_| Vec::new());
        for axis in cuts.iter_mut() {
            let n = r.u32()? as usize;
            axis.reserve_exact(n);
            for _ in 0..n {
                axis.push(r.f64()?);
            }
            if axis.windows(2).any(|w| w[0] > w[1]) {
                return Err(crate::persist::PersistError::Corrupt(
                    "adaptive grid cuts out of order".into(),
                ));
            }
        }
        Ok(AdaptiveGrid { domain, cuts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::SplitMix64;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn domain() -> Rect<2> {
        r2(0.0, 0.0, 100.0, 100.0)
    }

    /// Two dense blobs plus sparse background — enough skew that equal
    /// width and equal count differ sharply.
    fn skewed_boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let (cx, cy) = match rng.gen_range(0.0, 1.0) {
                    f if f < 0.45 => (10.0, 10.0),
                    f if f < 0.9 => (85.0, 85.0),
                    _ => (rng.gen_range(0.0, 95.0), rng.gen_range(0.0, 95.0)),
                };
                let x = (cx + rng.gen_range(-6.0, 6.0)).clamp(0.0, 95.0);
                let y = (cy + rng.gen_range(-6.0, 6.0)).clamp(0.0, 95.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.1, 4.0),
                    y + rng.gen_range(0.1, 4.0),
                )
            })
            .collect()
    }

    #[test]
    fn quantile_cuts_are_sorted_and_inside_domain() {
        let data = skewed_boxes(3_000, 1);
        let g = AdaptiveGrid::from_sample(domain(), [8, 8], &data);
        assert_eq!(g.dims(), [8, 8]);
        assert_eq!(g.tile_count(), 64);
        for axis in 0..2 {
            let cuts = g.cuts(axis);
            assert_eq!(cuts.len(), 7);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
            assert!(cuts.iter().all(|&c| (0.0..=100.0).contains(&c)));
        }
    }

    #[test]
    fn every_point_owned_by_exactly_one_tile() {
        let data = skewed_boxes(2_000, 2);
        let g = AdaptiveGrid::from_sample(domain(), [5, 3], &data);
        let mut rng = SplitMix64::new(3);
        for _ in 0..2_000 {
            let p = Point([rng.gen_range(-30.0, 130.0), rng.gen_range(-30.0, 130.0)]);
            let owners = (0..g.tile_count()).filter(|&t| g.owns(t, &p)).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn tile_rects_tile_the_domain_and_round_trip() {
        let data = skewed_boxes(2_000, 4);
        let g = AdaptiveGrid::from_sample(domain(), [6, 4], &data);
        let total: f64 = (0..g.tile_count()).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "total {total}");
        for t in 0..g.tile_count() {
            let r = g.tile_rect(t);
            if r.volume() > 0.0 {
                // Strictly interior point to dodge the boundary rule.
                let p = Point([r.lo[0] + r.extent(0) * 0.5, r.lo[1] + r.extent(1) * 0.5]);
                assert_eq!(g.tile_of(&p), t);
            }
        }
    }

    #[test]
    fn covering_contains_every_owned_tile() {
        let data = skewed_boxes(2_000, 5);
        let g = AdaptiveGrid::from_sample(domain(), [7, 7], &data);
        let mut rng = SplitMix64::new(6);
        for _ in 0..500 {
            let x = rng.gen_range(-10.0, 100.0);
            let y = rng.gen_range(-10.0, 100.0);
            let r = r2(
                x,
                y,
                x + rng.gen_range(0.0, 50.0),
                y + rng.gen_range(0.0, 50.0),
            );
            let covered = g.covering_tiles(&r);
            for _ in 0..20 {
                let p = Point([
                    rng.gen_range(r.lo[0], r.hi[0] + 1e-9),
                    rng.gen_range(r.lo[1], r.hi[1] + 1e-9),
                ]);
                let p = Point([p[0].min(r.hi[0]), p[1].min(r.hi[1])]);
                assert!(covered.contains(&g.tile_of(&p)), "{p:?} of {r:?}");
            }
        }
    }

    #[test]
    fn balances_clustered_data_better_than_uniform() {
        use crate::partition::load_imbalance;
        use crate::UniformGrid;
        let a = skewed_boxes(4_000, 7);
        let b = skewed_boxes(4_000, 8);
        let uniform = UniformGrid::new(domain(), 6);
        let adaptive = AdaptiveGrid::from_sample(domain(), [6, 6], &a);
        let ui = load_imbalance(&uniform, &a, &b);
        let ai = load_imbalance(&adaptive, &a, &b);
        assert!(ai < ui, "adaptive imbalance {ai} not below uniform {ui}");
    }

    #[test]
    fn empty_sample_degrades_to_uniform_cuts() {
        let g = AdaptiveGrid::from_sample(domain(), [4, 4], &[]);
        assert_eq!(g.cuts(0), &[25.0, 50.0, 75.0]);
        assert_eq!(
            g.tile_of(&Point([60.0, 10.0])),
            row_major_index([2, 0], [4, 4])
        );
    }

    #[test]
    fn degenerate_identical_sample_collapses_gracefully() {
        // All centers identical → all cuts identical → every interior
        // cell between duplicates is empty, but ownership stays total.
        let data: Vec<Rect<2>> = (0..100).map(|_| r2(50.0, 50.0, 50.0, 50.0)).collect();
        let g = AdaptiveGrid::from_sample(domain(), [4, 4], &data);
        let mut rng = SplitMix64::new(9);
        for _ in 0..300 {
            let p = Point([rng.gen_range(-10.0, 110.0), rng.gen_range(-10.0, 110.0)]);
            let owners = (0..g.tile_count()).filter(|&t| g.owns(t, &p)).count();
            assert_eq!(owners, 1);
        }
        let total: f64 = (0..g.tile_count()).map(|t| g.tile_rect(t).volume()).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
    }
}
