//! # cbb-engine — parallel partitioned query/join execution
//!
//! The paper's clipping cuts leaf I/O per *probe*; this crate adds the
//! throughput layer above it: spatial partitioning and multi-threaded
//! execution, with every per-tile probe still benefiting from clip-point
//! pruning. Three pieces:
//!
//! * [`partition`] — a PBSM-style uniform grid ([`UniformGrid`]):
//!   rectangles are multi-assigned to every tile they overlap, and
//!   reference-point ownership makes downstream dedup exact (after Aji et
//!   al., *Effective Spatial Data Partitioning for Scalable Query
//!   Processing*).
//! * [`join`] — the partitioned parallel join ([`partitioned_join`]):
//!   per-tile joins by STT over clipped R-trees, INLJ, or a plane sweep
//!   over the columnar [`cbb_joins::TileColumns`] layout — chosen per
//!   tile by [`JoinAlgo::Auto`] from tile cardinalities and forest-cache
//!   presence — on a scoped worker pool with dynamic tile scheduling,
//!   counters merged via `AddAssign` (after Tsitsigkos et al., *Parallel
//!   In-Memory Evaluation of Spatial Joins*). Pair counts are exactly
//!   those of a sequential join for every algorithm.
//! * [`batch`] — the batched range-query executor
//!   ([`parallel_range_queries`]): a query workload sharded across
//!   workers against one shared [`cbb_rtree::ClippedRTree`], answers in
//!   workload order, [`cbb_rtree::AccessStats`] merged.
//! * [`update`] — the write side: [`Update`] batches applied through
//!   [`DatasetStore::apply_updates`] route each object to its covering
//!   tiles, maintain the per-tile clipped trees incrementally (§IV-D),
//!   and share untouched tiles copy-on-write with the previous
//!   [`TileForest`] — a versioned store instead of a rebuild-per-change
//!   snapshot.
//! * [`catalog`] — the multi-dataset layer: the mutable versioned
//!   [`DatasetStore`] (arena, liveness, free-slot compaction,
//!   per-dataset [`DataVersion`]) and the [`Catalog`] mapping
//!   [`DatasetId`]s to independently locked stores, each with its own
//!   partitioner ([`AnyPartitioner`] mixes kinds in one catalog).
//!   Cross-dataset joins borrow both sides' cached forests
//!   ([`partitioned_join_forests`]).
//! * [`persist`] — dataset durability codecs: full-store snapshots
//!   through the `cbb-storage` page layer (arena pages reuse the
//!   paper's Figure-4a node encoding) and per-batch WAL records with
//!   version-keyed idempotent replay ([`replay_update_batch`]), so the
//!   serve layer can recover a catalog after a crash.
//!
//! Everything runs on `std::thread::scope` — no runtime, no work queues
//! outlive a call, no external dependencies.
//!
//! ```
//! use cbb_core::{ClipConfig, ClipMethod};
//! use cbb_engine::{partitioned_join, JoinPlan, UniformGrid};
//! use cbb_geom::{Point, Rect};
//! use cbb_rtree::{TreeConfig, Variant};
//!
//! let r = |x: f64, y: f64| Rect::new(Point([x, y]), Point([x + 2.0, y + 2.0]));
//! let left = vec![r(0.0, 0.0), r(5.0, 5.0), r(9.0, 9.0)];
//! let right = vec![r(1.0, 1.0), r(8.5, 8.5)];
//! let plan = JoinPlan::new(
//!     UniformGrid::new(Rect::new(Point([0.0, 0.0]), Point([12.0, 12.0])), 2),
//!     TreeConfig::tiny(Variant::RStar),
//!     ClipConfig::paper_default::<2>(ClipMethod::Stairline),
//!     2,
//! );
//! assert_eq!(partitioned_join(&plan, &left, &right).pairs, 2);
//! ```

pub mod adaptive;
pub mod batch;
pub mod catalog;
pub mod join;
pub mod partition;
pub mod persist;
pub mod pool;
pub mod quadtree;
pub mod shard;
pub mod update;

pub use adaptive::AdaptiveGrid;
pub use batch::{
    parallel_range_queries, BatchExecutor, BatchOutcome, KnnOutcome, QueryAlgo, TileForest,
};
pub use catalog::{
    Catalog, CatalogError, CompactionPolicy, Dataset, DatasetId, DatasetStore,
    DEFAULT_COMPACT_DEAD_FRACTION,
};
pub use join::{
    partitioned_join, partitioned_join_forests, partitioned_join_with, sequential_join, AutoPolicy,
    ForestCache, ForestKey, JoinAlgo, JoinPlan, SplitPolicy, DEFAULT_FOREST_CACHE_CAPACITY,
};
pub use partition::{load_imbalance, AnyPartitioner, DataVersion, Partitioner, UniformGrid};
pub use persist::{
    decode_update_batch, encode_update_batch, read_snapshot, replay_update_batch, restore_store,
    write_snapshot, ByteReader, PersistError, PersistPartitioner, SnapshotContents,
};
pub use quadtree::QuadtreePartitioner;
pub use shard::{assignment_loads, merge_knn, ShardMap, ShardTiling};
pub use update::{Update, UpdateOutcome, UpdateResult};
