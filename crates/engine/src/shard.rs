//! Shard-boundary fitting over a [`Partitioner`]'s tiling.
//!
//! A *shard* owns a contiguous range of global tile ids. Everything the
//! engine already guarantees per tile — multi-assignment, reference-point
//! ownership, counter-exact join decomposition — survives the split
//! unchanged, because a shard boundary is just a grouping of tiles:
//!
//! * [`ShardMap`] cuts `0..tile_count` into one contiguous range per
//!   shard, either evenly ([`ShardMap::balanced`]) or weighted by
//!   per-tile assignment counts ([`ShardMap::fitted`]) so a data-fitted
//!   partitioner's hot region does not land on one shard. Aji et al.
//!   (*Effective Spatial Data Partitioning for Scalable Query
//!   Processing*) make exactly this point: partition quality is what
//!   drives distributed query scalability, and the same fitters that
//!   balance tiles balance shards.
//! * [`ShardTiling`] wraps a partitioner into one shard's *view* of it:
//!   the global tile-id space is kept (so reference-point ownership
//!   still names global tiles), but [`Partitioner::covering_tiles`] is
//!   filtered to the shard's range — a store built under a
//!   [`ShardTiling`] indexes only its shard's tiles, and produces
//!   exactly the results/pairs whose owning tile lies in that range.
//!   Summing (or concatenating, for tile-ordered results) over all
//!   shards of a [`ShardMap`] therefore reproduces the unsharded answer
//!   *exactly* — the property the serve layer's scatter-gather router
//!   and its oracle tests rest on.
//! * [`merge_knn`] folds per-shard k-nearest candidate lists into the
//!   global top-k with the same id-dedup + `(distance, id)` ordering
//!   the single-store search uses, so the merged answer is byte-equal
//!   to an unsharded [`crate::DatasetStore`] kNN.

use cbb_geom::{Point, Rect};
use cbb_rtree::{push_neighbor, Neighbor};

use crate::partition::Partitioner;

/// A contiguous cut of a tiling's `0..tile_count` global tile ids into
/// `shard_count` ranges, shard `s` owning `range(s)`.
///
/// Contiguity is deliberate: a shard's tiles are an ascending run, so
/// concatenating per-shard tile-ordered results in shard order yields
/// the global tile-ascending order an unsharded store produces — no
/// re-sort on merge. Shards may be empty when there are fewer tiles
/// than shards (the router must tolerate that; the tests pin it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// `shard_count + 1` non-decreasing cut points; shard `s` owns
    /// tiles `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl ShardMap {
    /// Cut `tile_count` tiles into `shards` near-equal contiguous
    /// ranges: shard `s` gets `⌊s·T/N⌋ .. ⌊(s+1)·T/N⌋`.
    pub fn balanced(tile_count: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let bounds = (0..=shards).map(|s| s * tile_count / shards).collect();
        ShardMap { bounds }
    }

    /// Cut tiles into `shards` contiguous ranges weighted by per-tile
    /// `loads` (e.g. [`assignment_loads`] of the dataset being
    /// sharded): shard `s` ends at the first prefix covering
    /// `(s+1)/N` of the total load. Deterministic in `(loads, shards)`;
    /// all-zero loads degrade to [`Self::balanced`].
    pub fn fitted(loads: &[u64], shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let total: u128 = loads.iter().map(|&l| l as u128).sum();
        if total == 0 {
            return Self::balanced(loads.len(), shards);
        }
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut prefix: u128 = 0;
        let mut tile = 0usize;
        for s in 1..shards {
            let target = total * s as u128 / shards as u128;
            while tile < loads.len() && prefix < target {
                prefix += loads[tile] as u128;
                tile += 1;
            }
            bounds.push(tile);
        }
        bounds.push(loads.len());
        ShardMap { bounds }
    }

    /// Rebuild a map from explicit cut points: shard `s` owns tiles
    /// `bounds[s]..bounds[s + 1]`. This is the recovery path — a
    /// restarted router reassembles each dataset's map from the
    /// per-shard tile ranges its shards recovered — so the invariants
    /// ([`Self::balanced`]/[`Self::fitted`] establish them by
    /// construction) are asserted here.
    pub fn from_bounds(bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(bounds[0], 0, "shard 0 must start at tile 0");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "cut points must be non-decreasing"
        );
        ShardMap { bounds }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of global tiles the map covers.
    pub fn tile_count(&self) -> usize {
        *self.bounds.last().expect("bounds are never empty")
    }

    /// The contiguous global tile range shard `s` owns (possibly
    /// empty).
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// The shard owning global tile `tile`.
    pub fn shard_of(&self, tile: usize) -> usize {
        debug_assert!(tile < self.tile_count(), "tile out of range");
        // partition_point finds the first bound > tile; its predecessor
        // starts the owning range. Empty shards share a bound with
        // their successor and can never win (their range excludes
        // everything).
        self.bounds.partition_point(|&b| b <= tile) - 1
    }

    /// Ascending, deduplicated shard ids owning any of `tiles` — the
    /// scatter set of a query covering those tiles.
    pub fn covering_shards(&self, tiles: &[usize]) -> Vec<usize> {
        let mut shards: Vec<usize> = tiles.iter().map(|&t| self.shard_of(t)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// One shard's view of a partitioner: global tile ids, range-filtered
/// coverage.
///
/// [`Partitioner::tile_count`], [`Partitioner::tile_of`], and
/// [`Partitioner::tile_rect`] delegate to the wrapped partitioner
/// unchanged — tile ids stay **global**, so reference-point ownership
/// ([`Partitioner::owns`]) names the same unique tile it names
/// unsharded. Only [`Partitioner::covering_tiles`] is filtered to the
/// shard's range: a store built under this view assigns (and indexes,
/// and answers for) exactly the tiles the shard owns. An object or
/// query whose coverage misses the range entirely simply lands in zero
/// tiles here — some other shard of the same [`ShardMap`] covers it.
///
/// The two partitioner laws survive *jointly* across a full shard set:
/// every point is owned by one global tile (law 1, inherited), and the
/// shard whose range holds that tile sees every rectangle containing
/// the point (law 2, because the unfiltered coverage did) — which is
/// why per-shard results merge exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTiling<P> {
    inner: P,
    lo: usize,
    hi: usize,
}

impl<P> ShardTiling<P> {
    /// View `tiles` (a range out of a [`ShardMap`] fitted to `inner`'s
    /// tiling) of `inner`.
    pub fn new(inner: P, tiles: std::ops::Range<usize>) -> Self {
        ShardTiling {
            inner,
            lo: tiles.start,
            hi: tiles.end,
        }
    }

    /// The wrapped (global) partitioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The global tile range this view covers.
    pub fn tiles(&self) -> std::ops::Range<usize> {
        self.lo..self.hi
    }
}

impl<const D: usize, P: Partitioner<D>> Partitioner<D> for ShardTiling<P> {
    fn tile_count(&self) -> usize {
        self.inner.tile_count()
    }

    fn tile_of(&self, p: &Point<D>) -> usize {
        self.inner.tile_of(p)
    }

    fn covering_tiles(&self, r: &Rect<D>) -> Vec<usize> {
        let mut tiles = self.inner.covering_tiles(r);
        tiles.retain(|&t| self.lo <= t && t < self.hi);
        tiles
    }

    fn tile_rect(&self, tile: usize) -> Rect<D> {
        self.inner.tile_rect(tile)
    }
}

/// Per-tile assignment counts of `rects` under `partitioner` — the
/// load signal [`ShardMap::fitted`] cuts on (a counting pass; nothing
/// is materialised per tile).
pub fn assignment_loads<const D: usize, P: Partitioner<D>>(
    partitioner: &P,
    rects: &[Rect<D>],
) -> Vec<u64> {
    let mut loads = vec![0u64; partitioner.tile_count()];
    for r in rects {
        for t in partitioner.covering_tiles(r) {
            loads[t] += 1;
        }
    }
    loads
}

/// Merge per-shard k-nearest candidate lists into the global top-k:
/// id-dedup (an object spanning a shard boundary is reported by every
/// shard indexing it, at the same distance), then the same
/// `(distance, id)`-ordered insertion ([`push_neighbor`]) the
/// single-store search uses — so the merged list is byte-equal to an
/// unsharded kNN over the union of the shards' objects.
pub fn merge_knn(parts: impl IntoIterator<Item = Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    let mut best: Vec<Neighbor> = Vec::new();
    for part in parts {
        for (id, dist) in part {
            if best.iter().any(|&(bid, _)| bid == id) {
                continue; // boundary-spanning object already merged
            }
            push_neighbor(&mut best, k, id, dist);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::UniformGrid;
    use cbb_geom::SplitMix64;
    use cbb_rtree::DataId;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    #[test]
    fn balanced_map_partitions_every_tile_once() {
        for (tiles, shards) in [(16, 4), (16, 3), (5, 2), (4, 7), (0, 3), (1, 1)] {
            let map = ShardMap::balanced(tiles, shards);
            assert_eq!(map.shard_count(), shards);
            assert_eq!(map.tile_count(), tiles);
            let mut seen = 0usize;
            for s in 0..shards {
                let range = map.range(s);
                seen += range.len();
                for t in range {
                    assert_eq!(map.shard_of(t), s, "tile {t}");
                }
            }
            assert_eq!(seen, tiles, "ranges partition the tile space");
        }
    }

    #[test]
    fn more_shards_than_tiles_leaves_empty_shards() {
        let map = ShardMap::balanced(4, 7);
        let empty = (0..7).filter(|&s| map.range(s).is_empty()).count();
        assert_eq!(empty, 3, "7 shards over 4 tiles: 3 empty");
        // Every tile still has exactly one owner.
        for t in 0..4 {
            let s = map.shard_of(t);
            assert!(map.range(s).contains(&t));
        }
    }

    #[test]
    fn fitted_map_balances_skewed_loads() {
        // Tile 0 holds half the data; a balanced cut of 8 tiles × 2
        // shards puts tiles 0..4 on shard 0 (75 % of load), the fitted
        // cut isolates the hot tile.
        let loads = [500u64, 100, 100, 100, 50, 50, 50, 50];
        let map = ShardMap::fitted(&loads, 2);
        assert_eq!(map.tile_count(), 8);
        let first: u64 = map.range(0).map(|t| loads[t]).sum();
        let second: u64 = map.range(1).map(|t| loads[t]).sum();
        assert!(first <= 600 && second >= 400, "{first} vs {second}");
        // Deterministic and total.
        assert_eq!(map, ShardMap::fitted(&loads, 2));
        assert_eq!(map.range(0).len() + map.range(1).len(), 8);
        // All-zero loads degrade to the balanced cut.
        assert_eq!(ShardMap::fitted(&[0; 8], 2), ShardMap::balanced(8, 2));
    }

    #[test]
    fn covering_shards_dedups_and_sorts() {
        let map = ShardMap::balanced(16, 4);
        assert_eq!(map.covering_shards(&[0, 1, 2, 3]), vec![0]);
        assert_eq!(map.covering_shards(&[3, 4, 15, 5]), vec![0, 1, 3]);
        assert_eq!(map.covering_shards(&[]), Vec::<usize>::new());
    }

    #[test]
    fn shard_views_jointly_reproduce_the_global_assignment() {
        let grid = UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 4);
        let mut rng = SplitMix64::new(21);
        let rects: Vec<Rect<2>> = (0..300)
            .map(|_| {
                let x = rng.gen_range(-5.0, 95.0);
                let y = rng.gen_range(-5.0, 95.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.1, 30.0),
                    y + rng.gen_range(0.1, 30.0),
                )
            })
            .collect();
        for shards in [2usize, 3, 5] {
            let map = ShardMap::fitted(&assignment_loads(&grid, &rects), shards);
            let global = Partitioner::assign(&grid, &rects);
            let mut merged = vec![Vec::new(); grid.tile_count()];
            for s in 0..shards {
                let view = ShardTiling::new(grid, map.range(s));
                assert_eq!(Partitioner::tile_count(&view), grid.tile_count());
                let assigned = view.assign(&rects);
                for (t, list) in assigned.into_iter().enumerate() {
                    if !list.is_empty() {
                        assert!(map.range(s).contains(&t), "shard {s} leaked tile {t}");
                        merged[t] = list;
                    }
                }
            }
            assert_eq!(
                merged, global,
                "{shards}-shard views must tile the assignment"
            );
        }
    }

    #[test]
    fn shard_view_ownership_is_global() {
        let grid = UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 4);
        let view = ShardTiling::new(grid, 4..8);
        let mut rng = SplitMix64::new(22);
        for _ in 0..500 {
            let p = Point([rng.gen_range(-10.0, 110.0), rng.gen_range(-10.0, 110.0)]);
            // tile_of and owns answer globally — identical to the
            // unsharded partitioner for every point.
            assert_eq!(Partitioner::tile_of(&view, &p), grid.tile_of(&p));
            for t in 0..16 {
                assert_eq!(view.owns(t, &p), grid.owns(t, &p));
            }
        }
    }

    #[test]
    fn merge_knn_matches_single_list_semantics() {
        let n = |id: u32, d: f64| (DataId(id), d);
        // Three shards, a boundary object (id 7) reported twice, a tie
        // at the k-th distance broken by id.
        let a = vec![n(7, 1.0), n(2, 4.0)];
        let b = vec![n(5, 2.0), n(7, 1.0), n(9, 4.0)];
        let c = vec![n(1, 4.0)];
        let merged = merge_knn([a, b, c], 4);
        assert_eq!(merged, vec![n(7, 1.0), n(5, 2.0), n(1, 4.0), n(2, 4.0)]);
        assert!(merge_knn([vec![n(3, 0.5)]], 0).is_empty());
        // Order of shard lists does not change the answer.
        let x = vec![n(1, 4.0)];
        let y = vec![n(5, 2.0), n(7, 1.0), n(9, 4.0)];
        let z = vec![n(7, 1.0), n(2, 4.0)];
        assert_eq!(merged, merge_knn([x, y, z], 4));
    }
}
