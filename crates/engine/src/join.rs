//! Partition-parallel spatial join with two-level dynamic scheduling.
//!
//! The input rectangle sets are multi-assigned to the tiles of a
//! [`Partitioner`], a clipped R-tree is bulk-loaded per tile and side,
//! and the per-tile joins (STT or INLJ, clipped or not) run on a scoped
//! worker pool pulling from one shared dynamic queue. Duplicate pairs
//! from spanning objects are eliminated with the reference-point rule
//! (see [`crate::partition`]), so the merged [`JoinResult`] reports
//! **exactly** the global pair count of a sequential join — verified
//! against `brute_force_pairs` and sequential `stt`/`inlj` in the tests.
//!
//! **Two-level scheduling.** Per-tile tasks alone cannot balance skewed
//! data: one dense tile can hold most of the work and straggle the run
//! no matter how the remaining tiles are stolen. Tiles whose estimated
//! work exceeds the [`SplitPolicy`] threshold are therefore *decomposed*
//! — STT tiles into root-level node-pair subtasks
//! ([`cbb_joins::stt_tasks`]), INLJ tiles into probe chunks — and the
//! subtasks are fed to the same dynamic queue as the remaining whole
//! tiles, heaviest first. The decomposition is counter-exact: every
//! [`JoinResult`] field, not just `pairs`, matches the undecomposed run.
//!
//! I/O counters are summed over tiles. They are comparable across runs of
//! the same plan (the paper's join I/O metric per tile), but not directly
//! to a single global-tree join: per-tile trees are smaller and shallower.
//!
//! **Tree reuse across joins.** [`partitioned_join`] builds the per-tile
//! trees of *both* sides per call. A serving layer joining many probe
//! sets against one slowly-changing dataset should instead build a
//! [`TileForest`] over the indexed side once and call
//! [`partitioned_join_with`] per request — only the probe side is
//! (re)built, and the [`ForestCache`] keys the forest by
//! [`DataVersion`] so a data change (and nothing else) triggers a
//! rebuild. Counters and pair counts are identical to the build-per-call
//! path: the same `bulk_load` runs over the same per-tile id lists, and
//! a clip table that is present but unused changes no traversal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cbb_core::ClipConfig;
use cbb_geom::Rect;
use cbb_joins::{
    inlj_filtered, reference_point, stt_filtered, stt_filtered_from, stt_tasks, JoinResult,
};
use cbb_rtree::{ClippedRTree, DataId, NodeId, RTree, TreeConfig};

use crate::batch::TileForest;
use crate::catalog::DatasetId;
use crate::partition::{DataVersion, Partitioner, UniformGrid};
use crate::pool::{fold_dynamic_tasks, map_chunked};

/// Which per-tile join strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Synchronised tree traversal: both tile sides are indexed.
    Stt,
    /// Index nested loops: the right tile side is indexed, the left tile
    /// side streamed as probes.
    Inlj,
}

/// When to decompose a tile into intra-tile subtasks (the second
/// scheduling level). Estimated tile work is `|left| × |right|`, the
/// candidate cross product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Per-tile tasks only (the PR 1 behaviour): a hot tile serialises
    /// its whole work on one worker.
    Never,
    /// Decompose tiles holding more than `1/(2·workers)` of the total
    /// estimated work — a tile light enough to fit its fair share twice
    /// over is not worth the extra task bookkeeping. No-op with one
    /// worker.
    Auto,
    /// Decompose tiles whose estimated work exceeds this many candidate
    /// pairs, regardless of worker count.
    Above(u64),
}

impl SplitPolicy {
    /// The decomposition threshold for a workload of `total` estimated
    /// work on `workers` threads; `None` disables decomposition.
    fn threshold(self, total: u64, workers: usize) -> Option<u64> {
        match self {
            SplitPolicy::Never => None,
            SplitPolicy::Above(thr) => Some(thr),
            SplitPolicy::Auto if workers <= 1 => None,
            SplitPolicy::Auto => Some(total / (2 * workers as u64)),
        }
    }
}

/// A complete partitioned-join plan: partitioning, per-tile index and
/// clipping configuration, strategy, parallelism, and the intra-tile
/// decomposition policy.
#[derive(Clone, Copy, Debug)]
pub struct JoinPlan<const D: usize, P = UniformGrid<D>> {
    /// Spatial partitioning of the workload (any [`Partitioner`]).
    pub partitioner: P,
    /// Template for every per-tile tree (world bounds are taken from the
    /// template as-is; leave `world` unset to derive them per tile).
    pub tree: TreeConfig<D>,
    /// Clip-point parameters for the per-tile trees.
    pub clip: ClipConfig,
    /// Run Algorithm 2 dominance pruning inside each tile join.
    pub use_clips: bool,
    /// Per-tile strategy.
    pub algo: JoinAlgo,
    /// Worker threads (clamped to the number of scheduled tasks).
    pub workers: usize,
    /// When to decompose hot tiles into subtasks.
    pub split: SplitPolicy,
}

impl<const D: usize, P> JoinPlan<D, P> {
    /// A plan joining with STT over `partitioner` using `workers`
    /// threads, paper-default clipping, automatic hot-tile decomposition,
    /// and the given tree template.
    pub fn new(partitioner: P, tree: TreeConfig<D>, clip: ClipConfig, workers: usize) -> Self {
        JoinPlan {
            partitioner,
            tree,
            clip,
            use_clips: true,
            algo: JoinAlgo::Stt,
            workers,
            split: SplitPolicy::Auto,
        }
    }

    /// Switch the per-tile strategy.
    pub fn with_algo(mut self, algo: JoinAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Enable/disable clip-point pruning (the tile trees are built
    /// without clip tables when disabled, so the baseline pays no
    /// Algorithm 1 cost either).
    pub fn with_clips(mut self, use_clips: bool) -> Self {
        self.use_clips = use_clips;
        self
    }

    /// Set the hot-tile decomposition policy.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }
}

/// Bulk-load one side of a tile: `ids` index into `objects` and are kept
/// as global [`DataId`]s so cross-tile dedup reasons about global pairs.
fn build_tile_tree<const D: usize>(
    objects: &[Rect<D>],
    ids: &[u32],
    tree: TreeConfig<D>,
    clip: ClipConfig,
    use_clips: bool,
) -> ClippedRTree<D> {
    let items: Vec<(Rect<D>, DataId)> = ids
        .iter()
        .map(|&i| (objects[i as usize], DataId(i)))
        .collect();
    let base = RTree::bulk_load(tree, &items);
    if use_clips {
        ClippedRTree::from_tree(base, clip)
    } else {
        ClippedRTree::unclipped(base)
    }
}

/// Where a tile's tree (either side) comes from: built for this call,
/// or borrowed from a cached [`TileForest`].
enum TileTree<'f, const D: usize> {
    Owned(ClippedRTree<D>),
    Cached(&'f ClippedRTree<D>),
}

impl<const D: usize> TileTree<'_, D> {
    fn get(&self) -> &ClippedRTree<D> {
        match self {
            TileTree::Owned(t) => t,
            TileTree::Cached(t) => t,
        }
    }
}

/// The right-side tree source of one tile (kept as a named alias — the
/// setup paths below read better with the side spelled out).
type RightTile<'f, const D: usize> = TileTree<'f, D>;

/// A decomposed (hot) tile: its trees are built (or borrowed) once up
/// front, then its subtasks interleave with whole tiles on the shared
/// queue.
enum HotWork<'f, const D: usize> {
    /// STT: both sides indexed; `seeds` are the root-level node pairs
    /// from [`stt_tasks`].
    Stt {
        left: TileTree<'f, D>,
        right: RightTile<'f, D>,
        seeds: Vec<(NodeId, NodeId)>,
    },
    /// INLJ: the right side indexed, the probe list cut into `chunk`-size
    /// subtasks.
    Inlj {
        right: RightTile<'f, D>,
        probes: Vec<Rect<D>>,
        chunk: usize,
    },
}

struct HotTile<'f, const D: usize> {
    tile: usize,
    /// Root-level counters of the decomposition (directory accesses and
    /// clip prunes the subtasks must not re-count).
    base: JoinResult,
    work: HotWork<'f, D>,
}

/// One unit on the shared dynamic queue.
enum Task {
    /// A whole (cold) tile: build trees and join, as in PR 1.
    Tile(usize),
    /// One STT node-pair seed of a hot tile.
    SttSeed { hot: usize, seed: usize },
    /// One probe chunk of a hot INLJ tile.
    InljChunk { hot: usize, lo: usize, hi: usize },
}

/// Build the decomposed form of one hot tile.
fn build_hot<'f, const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    tile: usize,
    left: &[Rect<D>],
    lsource: &'f LeftSource<'f, D>,
    rtree: RightTile<'f, D>,
) -> HotTile<'f, D> {
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = lsource.tile(plan, left, tile);
            let (base, seeds) = stt_tasks(ltree.get(), rtree.get(), plan.use_clips);
            HotTile {
                tile,
                base,
                work: HotWork::Stt {
                    left: ltree,
                    right: rtree,
                    seeds,
                },
            }
        }
        JoinAlgo::Inlj => {
            let probes = lsource.probes(left, tile);
            // Aim for a few chunks per worker so the queue can rebalance.
            let chunk = probes.len().div_ceil((plan.workers * 4).max(1)).max(1);
            HotTile {
                tile,
                base: JoinResult::default(),
                work: HotWork::Inlj {
                    right: rtree,
                    probes,
                    chunk,
                },
            }
        }
    }
}

/// Run the partitioned parallel join of `left ⋈ right` under `plan`.
///
/// Returns the merged counters; `pairs` equals the sequential
/// `stt`/`inlj` (and brute-force) pair count exactly, for every
/// partitioner and split policy.
pub fn partitioned_join<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    partitioned_join_impl(plan, left, right, None, None)
}

/// [`partitioned_join`] with the right (indexed) side's per-tile trees
/// taken from a prebuilt [`TileForest`] instead of being rebuilt — the
/// repeat-join fast path. The forest must have been built over `right`
/// under `plan.partitioner` with `plan.tree`/`plan.clip` (tile counts
/// are checked; content correspondence is the caller's contract — a
/// [`ForestCache`] keyed by [`DataVersion`] maintains it).
///
/// Every counter of the returned [`JoinResult`] equals the build-per-call
/// path exactly; only the right-side build work (assignment + bulk
/// loading) is skipped.
pub fn partitioned_join_with<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
    forest: &TileForest<D>,
) -> JoinResult {
    assert_eq!(
        forest.tile_count(),
        plan.partitioner.tile_count(),
        "forest was built under a different partitioning"
    );
    partitioned_join_impl(plan, left, right, None, Some(forest))
}

/// The cross-dataset STT fast path: **both** sides' per-tile trees come
/// from prebuilt [`TileForest`]s — nothing is assigned, nothing is bulk
/// loaded. This is what a catalog-serving layer runs for a cross-dataset
/// join of two datasets that share a tiling: the probe dataset's cached
/// forest *is* the per-tile left side a [`partitioned_join`] would have
/// built, so every counter of the returned [`JoinResult`] equals the
/// build-per-call path exactly (rect-identical trees traverse
/// identically; id values play no part in traversal or reference-point
/// dedup).
///
/// Both forests must be tiled by `plan.partitioner` (tile counts are
/// checked; content correspondence is the caller's contract — a
/// [`ForestCache`] keyed by `(DatasetId, DataVersion)` maintains it).
/// STT only: INLJ streams raw probe rectangles, which a forest does not
/// store — when the partitioners differ or the plan is INLJ, the serve
/// layer re-partitions the probe side with [`partitioned_join_with`]
/// instead.
///
/// `right` is the indexed side's object arena (tombstoned slots
/// included — only ids present in the forest's trees are ever looked
/// up).
pub fn partitioned_join_forests<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left_forest: &TileForest<D>,
    right: &[Rect<D>],
    right_forest: &TileForest<D>,
) -> JoinResult {
    assert!(
        matches!(plan.algo, JoinAlgo::Stt),
        "INLJ probes are streamed, not forest-borrowed; use partitioned_join_with"
    );
    for (side, forest) in [("left", left_forest), ("right", right_forest)] {
        assert_eq!(
            forest.tile_count(),
            plan.partitioner.tile_count(),
            "{side} forest was built under a different partitioning"
        );
    }
    partitioned_join_impl(plan, &[], right, Some(left_forest), Some(right_forest))
}

/// Where a join side's per-tile trees come from: a prebuilt (cached)
/// forest, or a fresh per-call assignment to build tile trees from. The
/// enum carries exactly one source, so per-tile lookups cannot
/// desynchronise from the setup path.
enum TileSource<'f, const D: usize> {
    Forest(&'f TileForest<D>),
    Assign(Vec<Vec<u32>>),
}

/// The two sides read the same source type; the aliases keep the setup
/// paths legible.
type LeftSource<'f, const D: usize> = TileSource<'f, D>;
type RightSource<'f, const D: usize> = TileSource<'f, D>;

impl<const D: usize> TileSource<'_, D> {
    /// Population of tile `t` on this side (0 for empty tiles).
    fn count(&self, t: usize) -> usize {
        match self {
            TileSource::Forest(f) => f.tree(t).map_or(0, |tree| tree.tree.len()),
            TileSource::Assign(assign) => assign[t].len(),
        }
    }

    /// The tree of a populated tile `t`: borrowed from the forest, or
    /// built from the assignment for this call.
    fn tile<'s, P: Partitioner<D>>(
        &'s self,
        plan: &JoinPlan<D, P>,
        objects: &[Rect<D>],
        t: usize,
    ) -> TileTree<'s, D> {
        match self {
            TileSource::Forest(f) => {
                TileTree::Cached(f.tree(t).expect("populated tile has a tree"))
            }
            TileSource::Assign(assign) => TileTree::Owned(build_tile_tree(
                objects,
                &assign[t],
                plan.tree,
                plan.clip,
                plan.use_clips,
            )),
        }
    }

    /// The raw probe rectangles of tile `t` (INLJ left side). Forests
    /// hold trees, not probe lists — the public entry points keep INLJ
    /// on the assignment path.
    fn probes(&self, objects: &[Rect<D>], t: usize) -> Vec<Rect<D>> {
        match self {
            TileSource::Forest(_) => unreachable!("INLJ probes are never forest-sourced"),
            TileSource::Assign(assign) => assign[t].iter().map(|&i| objects[i as usize]).collect(),
        }
    }
}

fn partitioned_join_impl<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
    left_forest: Option<&TileForest<D>>,
    right_forest: Option<&TileForest<D>>,
) -> JoinResult {
    // Each side's per-tile population comes from its forest when given
    // (the trees hold exactly the assigned ids), otherwise from
    // assigning now.
    let lsource = match left_forest {
        Some(f) => LeftSource::Forest(f),
        None => LeftSource::Assign(plan.partitioner.assign(left)),
    };
    let source = match right_forest {
        Some(f) => RightSource::Forest(f),
        None => RightSource::Assign(plan.partitioner.assign(right)),
    };
    // Only tiles where both sides are populated can produce pairs.
    let mut tiles: Vec<usize> = (0..plan.partitioner.tile_count())
        .filter(|&t| lsource.count(t) > 0 && source.count(t) > 0)
        .collect();
    let weight = |t: usize| (lsource.count(t) as u64).saturating_mul(source.count(t) as u64);
    let total = tiles
        .iter()
        .fold(0u64, |acc, &t| acc.saturating_add(weight(t)));
    // Heaviest first (LPT): stragglers start before the queue drains.
    tiles.sort_by_key(|&t| std::cmp::Reverse(weight(t)));
    let (hot_tiles, cold_tiles): (Vec<usize>, Vec<usize>) =
        match plan.split.threshold(total, plan.workers) {
            Some(thr) => tiles.into_iter().partition(|&t| weight(t) > thr),
            None => (Vec::new(), tiles),
        };

    let right_tile = |t: usize| source.tile(plan, right, t);

    // Level 1: build hot tiles' trees in parallel and decompose them.
    let hot: Vec<HotTile<D>> = map_chunked(plan.workers, &hot_tiles, |_, chunk| {
        chunk
            .iter()
            .map(|&t| build_hot(plan, t, left, &lsource, right_tile(t)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // Level 2: one shared dynamic queue over hot subtasks (first — they
    // belong to the heaviest tiles) and whole cold tiles.
    let mut tasks: Vec<Task> = Vec::new();
    for (h, ht) in hot.iter().enumerate() {
        match &ht.work {
            HotWork::Stt { seeds, .. } => {
                tasks.extend((0..seeds.len()).map(|seed| Task::SttSeed { hot: h, seed }));
            }
            HotWork::Inlj { probes, chunk, .. } => {
                let mut lo = 0;
                while lo < probes.len() {
                    let hi = (lo + chunk).min(probes.len());
                    tasks.push(Task::InljChunk { hot: h, lo, hi });
                    lo = hi;
                }
            }
        }
    }
    tasks.extend(cold_tiles.iter().map(|&t| Task::Tile(t)));

    let parts = fold_dynamic_tasks(
        plan.workers,
        &tasks,
        JoinResult::default,
        |task, acc: &mut JoinResult| match *task {
            Task::Tile(t) => {
                *acc += join_tile(plan, t, left, &lsource, right, right_tile(t).get());
            }
            Task::SttSeed { hot: h, seed } => {
                let ht = &hot[h];
                let HotWork::Stt {
                    left: ltree,
                    right: rtree,
                    seeds,
                } = &ht.work
                else {
                    unreachable!("STT seed on a non-STT tile");
                };
                let (lid, rid) = seeds[seed];
                *acc += stt_filtered_from(
                    ltree.get(),
                    lid,
                    rtree.get(),
                    rid,
                    plan.use_clips,
                    |a, b| plan.partitioner.owns(ht.tile, &reference_point(a, b)),
                );
            }
            Task::InljChunk { hot: h, lo, hi } => {
                let ht = &hot[h];
                let HotWork::Inlj {
                    right: rtree,
                    probes,
                    ..
                } = &ht.work
                else {
                    unreachable!("INLJ chunk on a non-INLJ tile");
                };
                *acc += inlj_filtered(&probes[lo..hi], rtree.get(), plan.use_clips, |probe, id| {
                    plan.partitioner
                        .owns(ht.tile, &reference_point(probe, &right[id.0 as usize]))
                });
            }
        },
    );
    let mut result: JoinResult = parts.into_iter().sum();
    for ht in &hot {
        result += ht.base;
    }
    result
}

/// Join one whole tile: source the probe-side tree/list as planned and
/// run the strategy with the reference-point ownership filter. Both
/// sides' trees come from the caller (built for this call or borrowed
/// from cached forests).
fn join_tile<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    tile: usize,
    left: &[Rect<D>],
    lsource: &LeftSource<'_, D>,
    right: &[Rect<D>],
    rtree: &ClippedRTree<D>,
) -> JoinResult {
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = lsource.tile(plan, left, tile);
            stt_filtered(ltree.get(), rtree, plan.use_clips, |a, b| {
                plan.partitioner.owns(tile, &reference_point(a, b))
            })
        }
        JoinAlgo::Inlj => {
            let probes = lsource.probes(left, tile);
            inlj_filtered(&probes, rtree, plan.use_clips, |probe, id| {
                plan.partitioner
                    .owns(tile, &reference_point(probe, &right[id.0 as usize]))
            })
        }
    }
}

/// The key a cached forest is filed under: *which* dataset, at *which*
/// version. Dataset ids are catalog-unique forever (never reused after
/// a drop), so a key can never alias another dataset's trees.
pub type ForestKey = (DatasetId, DataVersion);

/// A bounded LRU [`TileForest`] cache keyed by `(DatasetId,
/// DataVersion)`: the closing piece of the ROADMAP's "cache keyed by
/// data version" item, grown a capacity bound for the mutable-store era
/// and a dataset dimension for the catalog era.
///
/// A serving layer calls [`ForestCache::get_or_build`] with a dataset's
/// id and current version on every request that needs per-tile trees.
/// While a key stays cached its `Arc` is returned (a *hit* — no
/// assignment, no bulk loading); a miss builds, stores, and evicts the
/// least-recently-used key beyond [`ForestCache::capacity`]. Delta
/// maintenance installs its freshly derived forests with
/// [`ForestCache::insert`] — those count as neither build nor hit,
/// which is exactly the point: an update batch produces a new version
/// *without* a rebuild. Dropping a dataset calls
/// [`ForestCache::evict_dataset`] so dead layers stop occupying slots.
///
/// Capacity is accounted **per key**: two hot datasets each pinning a
/// version or two coexist in a capacity-4 cache without thrashing each
/// other, because recency is tracked per `(dataset, version)` entry,
/// not per dataset. The capacity bound is what keeps a long-running
/// service with frequent version bumps from retaining every forest it
/// ever served: per-tile `Arc` sharing makes consecutive versions
/// cheap, but a thousand epochs of unshared tiles are not. Interior
/// mutability (mutex + atomic counters) lets many executor threads
/// share one cache behind an `Arc` or a read lock.
pub struct ForestCache<const D: usize> {
    /// Most-recently-used first.
    slots: Mutex<Vec<(ForestKey, Arc<TileForest<D>>)>>,
    capacity: usize,
    builds: AtomicU64,
    hits: AtomicU64,
}

/// Versions retained by default: the live one plus a few predecessors
/// still referenced by in-flight batches.
pub const DEFAULT_FOREST_CACHE_CAPACITY: usize = 4;

impl<const D: usize> Default for ForestCache<D> {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FOREST_CACHE_CAPACITY)
    }
}

impl<const D: usize> ForestCache<D> {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` versions (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a cache needs room for one forest");
        ForestCache {
            slots: Mutex::new(Vec::new()),
            capacity,
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained versions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("forest cache poisoned").len()
    }

    /// Whether no version is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The forest for `key`: the cached one when present (refreshed to
    /// most-recently-used), otherwise `build()` (stored, evicting the
    /// LRU key over capacity). The build runs under the cache lock —
    /// concurrent requesters of the same key wait and then hit.
    pub fn get_or_build(
        &self,
        key: ForestKey,
        build: impl FnOnce() -> TileForest<D>,
    ) -> Arc<TileForest<D>> {
        let mut slots = self.slots.lock().expect("forest cache poisoned");
        if let Some(pos) = slots.iter().position(|(k, _)| *k == key) {
            let hit = slots.remove(pos);
            let forest = hit.1.clone();
            slots.insert(0, hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return forest;
        }
        let forest = Arc::new(build());
        slots.insert(0, (key, forest.clone()));
        slots.truncate(self.capacity);
        self.builds.fetch_add(1, Ordering::Relaxed);
        forest
    }

    /// Store an externally produced forest (a delta-applied one) as the
    /// most-recently-used entry for `key`, evicting over capacity.
    /// Counts as neither a build nor a hit.
    pub fn insert(&self, key: ForestKey, forest: Arc<TileForest<D>>) {
        let mut slots = self.slots.lock().expect("forest cache poisoned");
        slots.retain(|(k, _)| *k != key);
        slots.insert(0, (key, forest));
        slots.truncate(self.capacity);
    }

    /// Drop every cached version of one dataset (the `DropDataset`
    /// companion — a dead layer must not occupy LRU slots).
    pub fn evict_dataset(&self, dataset: DatasetId) {
        self.slots
            .lock()
            .expect("forest cache poisoned")
            .retain(|((d, _), _)| *d != dataset);
    }

    /// Number of forest builds performed (misses), over the cache's
    /// lifetime. The "trees were NOT rebuilt" assertion of cache tests.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of cache hits (requests served without building).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drop every cached forest (next requests build regardless of
    /// version).
    pub fn invalidate(&self) {
        self.slots.lock().expect("forest cache poisoned").clear();
    }
}

/// Sequential baseline with the same per-tile index configuration: one
/// global tree per side, one thread, no partitioning. Used by benches and
/// tests as the ground truth the partitioned join must reproduce.
pub fn sequential_join<const D: usize, P>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    let all_left: Vec<u32> = (0..left.len() as u32).collect();
    let all_right: Vec<u32> = (0..right.len() as u32).collect();
    let rtree = build_tile_tree(right, &all_right, plan.tree, plan.clip, plan.use_clips);
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = build_tile_tree(left, &all_left, plan.tree, plan.clip, plan.use_clips);
            cbb_joins::stt(&ltree, &rtree, plan.use_clips)
        }
        JoinAlgo::Inlj => cbb_joins::inlj(left, &rtree, plan.use_clips),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveGrid;
    use crate::quadtree::QuadtreePartitioner;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_joins::brute_force_pairs;
    use cbb_rtree::Variant;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64, max_side: f64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 480.0);
                let y = rng.gen_range(0.0, 480.0);
                let w = rng.gen_range(0.5, max_side);
                let h = rng.gen_range(0.5, max_side);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    /// ~70 % of objects in one corner blob: guarantees a hot tile.
    fn clustered_boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let (cx, cy, s) = if rng.gen_range(0.0, 1.0) < 0.7 {
                    (60.0, 60.0, 30.0)
                } else {
                    (250.0, 250.0, 240.0)
                };
                let x = (cx + rng.gen_range(-s, s)).clamp(0.0, 480.0);
                let y = (cy + rng.gen_range(-s, s)).clamp(0.0, 480.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.5, 15.0),
                    y + rng.gen_range(0.5, 15.0),
                )
            })
            .collect()
    }

    fn plan2(per_dim: usize, workers: usize) -> JoinPlan<2> {
        JoinPlan::new(
            UniformGrid::new(r2(0.0, 0.0, 500.0, 500.0), per_dim),
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
            workers,
        )
    }

    #[test]
    fn matches_brute_force_for_both_algos() {
        let a = boxes(250, 1, 20.0);
        let b = boxes(300, 2, 20.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for workers in [1, 4] {
                let plan = plan2(4, workers).with_algo(algo);
                assert_eq!(
                    partitioned_join(&plan, &a, &b).pairs,
                    expected,
                    "{algo:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn wide_spanning_objects_do_not_double_count() {
        // Sides up to 150 over 125-wide tiles: most objects span tiles.
        let a = boxes(120, 3, 150.0);
        let b = boxes(140, 4, 150.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = plan2(4, 3).with_algo(algo);
            assert_eq!(partitioned_join(&plan, &a, &b).pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn unclipped_plan_matches_too() {
        let a = boxes(200, 5, 25.0);
        let b = boxes(200, 6, 25.0);
        let expected = brute_force_pairs(&a, &b);
        let plan = plan2(3, 2).with_clips(false);
        let res = partitioned_join(&plan, &a, &b);
        assert_eq!(res.pairs, expected);
        assert_eq!(res.clip_prunes, 0, "no clips, no prunes");
    }

    #[test]
    fn empty_inputs() {
        let a = boxes(50, 7, 20.0);
        let plan = plan2(4, 2);
        assert_eq!(partitioned_join(&plan, &a, &[]).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &a).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &[]), JoinResult::default());
    }

    #[test]
    fn sequential_baseline_agrees() {
        let a = boxes(180, 8, 30.0);
        let b = boxes(220, 9, 30.0);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = plan2(4, 4).with_algo(algo);
            assert_eq!(
                sequential_join(&plan, &a, &b).pairs,
                partitioned_join(&plan, &a, &b).pairs,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn decomposition_is_counter_exact() {
        // The two-level scheduler must not change *any* counter relative
        // to whole-tile execution — same trees, same traversals, only the
        // work order differs.
        let a = clustered_boxes(500, 10);
        let b = clustered_boxes(550, 11);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for workers in [2, 4] {
                let never = plan2(4, workers)
                    .with_algo(algo)
                    .with_split(SplitPolicy::Never);
                let auto = never.with_split(SplitPolicy::Auto);
                let eager = never.with_split(SplitPolicy::Above(0));
                let base = partitioned_join(&never, &a, &b);
                assert_eq!(partitioned_join(&auto, &a, &b), base, "{algo:?} auto");
                assert_eq!(partitioned_join(&eager, &a, &b), base, "{algo:?} eager");
            }
        }
    }

    #[test]
    fn eager_split_decomposes_every_tile() {
        // Above(0) forces every non-empty tile through the decomposition
        // path; pair counts must still be exact.
        let a = boxes(200, 12, 40.0);
        let b = boxes(200, 13, 40.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = plan2(3, 4)
                .with_algo(algo)
                .with_split(SplitPolicy::Above(0));
            assert_eq!(partitioned_join(&plan, &a, &b).pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn adaptive_and_quadtree_partitioners_join_exactly() {
        let a = clustered_boxes(400, 14);
        let b = clustered_boxes(450, 15);
        let expected = brute_force_pairs(&a, &b);
        let domain = r2(0.0, 0.0, 500.0, 500.0);
        let adaptive = AdaptiveGrid::from_sample(domain, [4, 4], &a);
        let quadtree = QuadtreePartitioner::build(domain, &a, 120);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = JoinPlan::new(
                adaptive.clone(),
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&plan, &a, &b).pairs,
                expected,
                "adaptive {algo:?}"
            );
            let plan = JoinPlan::new(
                quadtree.clone(),
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&plan, &a, &b).pairs,
                expected,
                "quadtree {algo:?}"
            );
        }
    }

    #[test]
    fn forest_join_is_counter_exact() {
        // Joining against a prebuilt forest must reproduce EVERY counter
        // of the build-per-call path, for both algorithms, clipped and
        // not, across split policies — same trees, same traversals.
        let a = clustered_boxes(400, 20);
        let b = clustered_boxes(450, 21);
        let base_plan = plan2(4, 3);
        let forest = TileForest::build(
            &base_plan.partitioner,
            &b,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for use_clips in [true, false] {
                for split in [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)] {
                    let plan = base_plan
                        .with_algo(algo)
                        .with_clips(use_clips)
                        .with_split(split);
                    let direct = partitioned_join(&plan, &a, &b);
                    let cached = partitioned_join_with(&plan, &a, &b, &forest);
                    assert_eq!(cached, direct, "{algo:?} clips={use_clips} {split:?}");
                }
            }
        }
    }

    #[test]
    fn forest_join_handles_empty_probe_side() {
        let b = boxes(120, 22, 25.0);
        let plan = plan2(3, 2);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        assert_eq!(
            partitioned_join_with(&plan, &[], &b, &forest),
            JoinResult::default()
        );
    }

    #[test]
    #[should_panic(expected = "different partitioning")]
    fn forest_join_rejects_mismatched_tiling() {
        let b = boxes(50, 23, 20.0);
        let plan = plan2(4, 2);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        let other = plan2(5, 2);
        let _ = partitioned_join_with(&other, &b, &b, &forest);
    }

    #[test]
    fn forests_join_is_counter_exact_for_both_sides_cached() {
        // The cross-dataset STT fast path: BOTH sides served from
        // prebuilt forests must reproduce EVERY counter of the
        // build-per-call join, clipped and not, across split policies.
        let a = clustered_boxes(380, 30);
        let b = clustered_boxes(420, 31);
        let base_plan = plan2(4, 3);
        let left_forest = TileForest::build(
            &base_plan.partitioner,
            &a,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        let right_forest = TileForest::build(
            &base_plan.partitioner,
            &b,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        for use_clips in [true, false] {
            for split in [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)] {
                let plan = base_plan.with_clips(use_clips).with_split(split);
                let direct = partitioned_join(&plan, &a, &b);
                let cached = partitioned_join_forests(&plan, &left_forest, &b, &right_forest);
                assert_eq!(cached, direct, "clips={use_clips} {split:?}");
            }
        }
        assert_eq!(
            partitioned_join_forests(&base_plan, &left_forest, &b, &right_forest).pairs,
            brute_force_pairs(&a, &b)
        );
    }

    #[test]
    #[should_panic(expected = "INLJ probes are streamed")]
    fn forests_join_rejects_inlj() {
        let b = boxes(40, 32, 20.0);
        let plan = plan2(3, 1).with_algo(JoinAlgo::Inlj);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 1);
        let _ = partitioned_join_forests(&plan, &forest, &b, &forest);
    }

    /// Key helper: dataset `d` at version `v`.
    fn key(d: u32, v: u64) -> ForestKey {
        (DatasetId(d), DataVersion(v))
    }

    #[test]
    fn forest_cache_hits_and_invalidates_by_version() {
        let a = boxes(150, 24, 25.0);
        let b = boxes(180, 25, 25.0);
        let plan = plan2(4, 2);
        let cache: ForestCache<2> = ForestCache::new();
        let ds = DatasetId(7);
        let mut version = DataVersion::initial();
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        // Three joins on one version: one build, two hits, stable result.
        let r1 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        let r2 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        let r3 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        assert_eq!((cache.builds(), cache.hits()), (1, 2));
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(r1.pairs, brute_force_pairs(&a, &b));
        // Version bump: rebuild once, then hit again.
        version.bump();
        let r4 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        assert_eq!((cache.builds(), cache.hits()), (2, 2));
        assert_eq!(r4, r1, "same data under a new version joins identically");
        let _ = cache.get_or_build((ds, version), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (2, 3));
        // The same version under a DIFFERENT dataset id is a different
        // key: a miss, not a hit.
        let _ = cache.get_or_build((DatasetId(8), version), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (3, 3));
        // Explicit invalidation forces a rebuild of the same key.
        cache.invalidate();
        let _ = cache.get_or_build((ds, version), || build(&b));
        assert_eq!(cache.builds(), 4);
    }

    #[test]
    fn forest_cache_lru_caps_retained_versions() {
        let b = boxes(120, 26, 25.0);
        let plan = plan2(3, 2);
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        let cache: ForestCache<2> = ForestCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert!(cache.is_empty());
        // Three distinct versions through a capacity-2 cache: the
        // oldest is evicted, memory stays bounded.
        for v in 0..3 {
            let _ = cache.get_or_build(key(0, v), || build(&b));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 3);
        // v0 was evicted: requesting it again is a miss (a rebuild).
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 4);
        // v2 was refreshed by nothing — v1 is now LRU and got evicted
        // by v0's reinsertion; v2 is still a hit.
        let _ = cache.get_or_build(key(0, 2), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (4, 1));
        // A hit refreshes recency: touch v0, insert a new version, and
        // v2 (not v0) is the one gone.
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        let _ = cache.get_or_build(key(0, 9), || build(&b));
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 5, "v0 must still be resident");
        // `insert` (the delta path) stores without counting a build and
        // still respects the cap; re-inserting a key replaces it.
        cache.insert(key(0, 50), Arc::new(build(&b)));
        cache.insert(key(0, 50), Arc::new(build(&b)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 5);
        let _ = cache.get_or_build(key(0, 50), || build(&b));
        assert_eq!(cache.builds(), 5, "inserted version is a hit");
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
    }

    #[test]
    fn forest_cache_two_hot_datasets_do_not_thrash() {
        // The multi-dataset LRU satellite: two datasets, each pinning
        // two live versions, interleaved hard against a capacity-4
        // cache — after the four initial builds every access is a hit;
        // neither dataset can push the other's forests out.
        let b = boxes(100, 27, 25.0);
        let plan = plan2(3, 2);
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        let cache: ForestCache<2> = ForestCache::with_capacity(4);
        let hot = [key(0, 0), key(1, 0), key(0, 1), key(1, 1)];
        for round in 0..6 {
            // Vary the interleaving order per round: A,B,A,B then
            // B,A,B,A — recency churn across datasets, same working set.
            let order: Vec<ForestKey> = if round % 2 == 0 {
                hot.to_vec()
            } else {
                hot.iter().rev().copied().collect()
            };
            for k in order {
                let _ = cache.get_or_build(k, || build(&b));
            }
        }
        assert_eq!(
            (cache.builds(), cache.hits()),
            (4, 20),
            "a capacity-4 working set of 4 keys never rebuilds"
        );
        assert_eq!(cache.len(), 4);

        // A fifth key evicts exactly the LRU entry. After the last
        // round the access order (old→new) was (1,1),(0,1),(1,0),(0,0)
        // — so (1,1) is the LRU victim.
        let _ = cache.get_or_build(key(2, 0), || build(&b));
        assert_eq!(cache.builds(), 5);
        let _ = cache.get_or_build(key(1, 1), || build(&b));
        assert_eq!(cache.builds(), 6, "(1,1) was the evicted LRU entry");
        // ... which in turn displaced (0,1), the next-oldest; dataset
        // 0's most recent version is still resident.
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 6, "(0,0) survived both evictions");
        let _ = cache.get_or_build(key(0, 1), || build(&b));
        assert_eq!(cache.builds(), 7, "(0,1) was displaced second");

        // evict_dataset drops only that dataset's keys.
        let before = cache.len();
        cache.evict_dataset(DatasetId(0));
        assert!(cache.len() < before);
        let _ = cache.get_or_build(key(1, 1), || build(&b));
        assert_eq!(cache.builds(), 7, "dataset 1 untouched by the eviction");
        let _ = cache.get_or_build(key(0, 1), || build(&b));
        assert_eq!(cache.builds(), 8, "dataset 0 keys are gone");
    }

    #[test]
    fn split_policy_thresholds() {
        assert_eq!(SplitPolicy::Never.threshold(1_000, 8), None);
        assert_eq!(SplitPolicy::Auto.threshold(1_000, 1), None);
        assert_eq!(SplitPolicy::Auto.threshold(1_000, 4), Some(125));
        assert_eq!(SplitPolicy::Above(7).threshold(1_000, 1), Some(7));
    }
}
