//! Partition-parallel spatial join with two-level dynamic scheduling.
//!
//! The input rectangle sets are multi-assigned to the tiles of a
//! [`Partitioner`], a clipped R-tree is bulk-loaded per tile and side,
//! and the per-tile joins (STT or INLJ, clipped or not) run on a scoped
//! worker pool pulling from one shared dynamic queue. Duplicate pairs
//! from spanning objects are eliminated with the reference-point rule
//! (see [`crate::partition`]), so the merged [`JoinResult`] reports
//! **exactly** the global pair count of a sequential join — verified
//! against `brute_force_pairs` and sequential `stt`/`inlj` in the tests.
//!
//! **Two-level scheduling.** Per-tile tasks alone cannot balance skewed
//! data: one dense tile can hold most of the work and straggle the run
//! no matter how the remaining tiles are stolen. Tiles whose estimated
//! work exceeds the [`SplitPolicy`] threshold are therefore *decomposed*
//! — STT tiles into root-level node-pair subtasks
//! ([`cbb_joins::stt_tasks`]), INLJ tiles into probe chunks — and the
//! subtasks are fed to the same dynamic queue as the remaining whole
//! tiles, heaviest first. The decomposition is counter-exact: every
//! [`JoinResult`] field, not just `pairs`, matches the undecomposed run.
//!
//! I/O counters are summed over tiles. They are comparable across runs of
//! the same plan (the paper's join I/O metric per tile), but not directly
//! to a single global-tree join: per-tile trees are smaller and shallower.
//!
//! **Tree reuse across joins.** [`partitioned_join`] builds the per-tile
//! trees of *both* sides per call. A serving layer joining many probe
//! sets against one slowly-changing dataset should instead build a
//! [`TileForest`] over the indexed side once and call
//! [`partitioned_join_with`] per request — only the probe side is
//! (re)built, and the [`ForestCache`] keys the forest by
//! [`DataVersion`] so a data change (and nothing else) triggers a
//! rebuild. Counters and pair counts are identical to the build-per-call
//! path: the same `bulk_load` runs over the same per-tile id lists, and
//! a clip table that is present but unused changes no traversal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cbb_core::{ClipConfig, ClipPoint};
use cbb_geom::Rect;
use cbb_joins::{
    inlj_filtered, reference_point, stt_filtered, stt_filtered_from, stt_tasks, sweep_precheck,
    sweep_scan, JoinResult, SweepSide, TileColumns,
};
use cbb_rtree::{ClippedRTree, DataId, NodeId, RTree, TreeConfig};

use crate::batch::TileForest;
use crate::catalog::DatasetId;
use crate::partition::{DataVersion, Partitioner, UniformGrid};
use crate::pool::{fold_dynamic_tasks, map_chunked};

/// Which per-tile join strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Synchronised tree traversal: both tile sides are indexed.
    Stt,
    /// Index nested loops: the right tile side is indexed, the left tile
    /// side streamed as probes.
    Inlj,
    /// Plane sweep over the columnar SoA layout ([`TileColumns`]):
    /// neither side is indexed — both are sorted by x-min (extracted
    /// from a cached forest, or sorted for this call) and swept with
    /// forward scans. The fast path for dense index-less tiles, where
    /// one sort beats bulk-loading two trees.
    ///
    /// The §IV clip filter composes at tile granularity: when a side is
    /// forest-backed, its root CBB prunes the tile's sweep window
    /// before any scan runs ([`sweep_precheck`]). An assignment-sourced
    /// side has no tree and therefore no clip points — pair counts are
    /// unaffected (clipping only removes dead space), but `clip_prunes`
    /// and pruned-tile work can differ between the cached and the
    /// build-per-call path, unlike the index algorithms.
    Sweep,
    /// Choose per tile from data already in hand — tile cardinalities
    /// and whether each side's forest (trees + columns) is cached:
    ///
    /// * both sides cached → [`JoinAlgo::Stt`] (the trees exist; the
    ///   lock-step descent does the least work),
    /// * right side cached and the probe side at most 1/8 of it →
    ///   [`JoinAlgo::Inlj`] (few probes against a prebuilt index),
    /// * otherwise → [`JoinAlgo::Sweep`] (building indexes for one
    ///   dense index-less join costs more than one sort).
    ///
    /// The choice is deterministic per tile and recorded in the
    /// [`JoinResult`] `tiles_*` counters; pair counts are identical for
    /// every choice (the oracle tests pin this).
    Auto,
}

/// The concrete kernel a tile runs after [`JoinAlgo::Auto`] resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TileAlgo {
    Stt,
    Inlj,
    Sweep,
}

/// The thresholds every per-tile `Auto` resolution reads — for joins
/// ([`JoinAlgo::Auto`]) and for fused batched range execution
/// ([`crate::QueryAlgo::Auto`]).
///
/// The defaults reproduce the previous hard-coded constants exactly (a
/// regression test pins this), so a plan or service that never touches
/// the policy behaves byte-identically. Tuning is exposed because the
/// right cut-overs are workload- and hardware-dependent: the defaults
/// were chosen on a 1-core container from machine-independent counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutoPolicy {
    /// [`JoinAlgo::Auto`]: a probe side at most `1/ratio` of a cached
    /// indexed side is "small" enough that per-probe index descents
    /// beat sorting both sides (INLJ over Sweep). Default 8.
    pub inlj_probe_ratio: usize,
    /// [`crate::QueryAlgo::Auto`]: a tile is fused only when at least
    /// this many of the batch's queries cover it — below that, the
    /// shared scan cannot amortise anything over per-query descents.
    /// Default 4.
    pub fuse_min_queries: usize,
    /// [`crate::QueryAlgo::Auto`], cold tile (columns not yet
    /// extracted): fuse only when the tile holds at most
    /// `queries × ratio` objects, so the one-off `O(n log n)`
    /// column extraction is amortised by the batch that forces it.
    /// A cached tile fuses on `fuse_min_queries` alone. Default 8.
    pub fuse_cold_ratio: usize,
}

impl Default for AutoPolicy {
    fn default() -> Self {
        AutoPolicy {
            inlj_probe_ratio: 8,
            fuse_min_queries: 4,
            fuse_cold_ratio: 8,
        }
    }
}

impl AutoPolicy {
    /// [`crate::QueryAlgo::Auto`]'s per-tile resolution: fuse the
    /// `queries` range queries covering a tile of `tile_len` objects
    /// into one shared sweep, or descend per query? Deterministic in
    /// its three inputs — batch size, tile cardinality, and whether the
    /// tile's columns are already cached on the forest.
    pub fn fuse_tile(&self, queries: usize, tile_len: usize, columns_cached: bool) -> bool {
        queries >= self.fuse_min_queries
            && (columns_cached || tile_len <= queries.saturating_mul(self.fuse_cold_ratio))
    }
}

/// Resolve the per-tile kernel from the plan and the data in hand: the
/// sides' cachedness (forest-backed or assigned for this call) and the
/// tile populations. Deterministic — the hot and cold paths of one run
/// resolve identically.
fn resolve_tile_algo(
    algo: JoinAlgo,
    policy: &AutoPolicy,
    left_cached: bool,
    right_cached: bool,
    left_count: usize,
    right_count: usize,
) -> TileAlgo {
    match algo {
        JoinAlgo::Stt => TileAlgo::Stt,
        JoinAlgo::Inlj => TileAlgo::Inlj,
        JoinAlgo::Sweep => TileAlgo::Sweep,
        JoinAlgo::Auto => {
            if left_cached && right_cached {
                TileAlgo::Stt
            } else if right_cached
                && left_count.saturating_mul(policy.inlj_probe_ratio) <= right_count
            {
                TileAlgo::Inlj
            } else {
                TileAlgo::Sweep
            }
        }
    }
}

/// When to decompose a tile into intra-tile subtasks (the second
/// scheduling level). Estimated tile work is `|left| × |right|`, the
/// candidate cross product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Per-tile tasks only (the PR 1 behaviour): a hot tile serialises
    /// its whole work on one worker.
    Never,
    /// Decompose tiles holding more than `1/(2·workers)` of the total
    /// estimated work — a tile light enough to fit its fair share twice
    /// over is not worth the extra task bookkeeping. No-op with one
    /// worker.
    Auto,
    /// Decompose tiles whose estimated work exceeds this many candidate
    /// pairs, regardless of worker count.
    Above(u64),
}

impl SplitPolicy {
    /// The decomposition threshold for a workload of `total` estimated
    /// work on `workers` threads; `None` disables decomposition.
    pub(crate) fn threshold(self, total: u64, workers: usize) -> Option<u64> {
        match self {
            SplitPolicy::Never => None,
            SplitPolicy::Above(thr) => Some(thr),
            SplitPolicy::Auto if workers <= 1 => None,
            SplitPolicy::Auto => Some(total / (2 * workers as u64)),
        }
    }
}

/// A complete partitioned-join plan: partitioning, per-tile index and
/// clipping configuration, strategy, parallelism, and the intra-tile
/// decomposition policy.
#[derive(Clone, Copy, Debug)]
pub struct JoinPlan<const D: usize, P = UniformGrid<D>> {
    /// Spatial partitioning of the workload (any [`Partitioner`]).
    pub partitioner: P,
    /// Template for every per-tile tree (world bounds are taken from the
    /// template as-is; leave `world` unset to derive them per tile).
    pub tree: TreeConfig<D>,
    /// Clip-point parameters for the per-tile trees.
    pub clip: ClipConfig,
    /// Run Algorithm 2 dominance pruning inside each tile join.
    pub use_clips: bool,
    /// Per-tile strategy.
    pub algo: JoinAlgo,
    /// Worker threads (clamped to the number of scheduled tasks).
    pub workers: usize,
    /// When to decompose hot tiles into subtasks.
    pub split: SplitPolicy,
    /// Thresholds [`JoinAlgo::Auto`] resolves against (defaults
    /// reproduce the previous hard-coded constants).
    pub auto: AutoPolicy,
}

impl<const D: usize, P> JoinPlan<D, P> {
    /// A plan joining with STT over `partitioner` using `workers`
    /// threads, paper-default clipping, automatic hot-tile decomposition,
    /// and the given tree template.
    pub fn new(partitioner: P, tree: TreeConfig<D>, clip: ClipConfig, workers: usize) -> Self {
        JoinPlan {
            partitioner,
            tree,
            clip,
            use_clips: true,
            algo: JoinAlgo::Stt,
            workers,
            split: SplitPolicy::Auto,
            auto: AutoPolicy::default(),
        }
    }

    /// Switch the per-tile strategy.
    pub fn with_algo(mut self, algo: JoinAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Enable/disable clip-point pruning (the tile trees are built
    /// without clip tables when disabled, so the baseline pays no
    /// Algorithm 1 cost either).
    pub fn with_clips(mut self, use_clips: bool) -> Self {
        self.use_clips = use_clips;
        self
    }

    /// Set the hot-tile decomposition policy.
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Replace the [`JoinAlgo::Auto`] resolution thresholds.
    pub fn with_auto(mut self, auto: AutoPolicy) -> Self {
        self.auto = auto;
        self
    }
}

/// Bulk-load one side of a tile: `ids` index into `objects` and are kept
/// as global [`DataId`]s so cross-tile dedup reasons about global pairs.
fn build_tile_tree<const D: usize>(
    objects: &[Rect<D>],
    ids: &[u32],
    tree: TreeConfig<D>,
    clip: ClipConfig,
    use_clips: bool,
) -> ClippedRTree<D> {
    let items: Vec<(Rect<D>, DataId)> = ids
        .iter()
        .map(|&i| (objects[i as usize], DataId(i)))
        .collect();
    let base = RTree::bulk_load(tree, &items);
    if use_clips {
        ClippedRTree::from_tree(base, clip)
    } else {
        ClippedRTree::unclipped(base)
    }
}

/// Where a tile's tree (either side) comes from: built for this call,
/// or borrowed from a cached [`TileForest`].
enum TileTree<'f, const D: usize> {
    Owned(ClippedRTree<D>),
    Cached(&'f ClippedRTree<D>),
}

impl<const D: usize> TileTree<'_, D> {
    fn get(&self) -> &ClippedRTree<D> {
        match self {
            TileTree::Owned(t) => t,
            TileTree::Cached(t) => t,
        }
    }
}

/// The right-side tree source of one tile (kept as a named alias — the
/// setup paths below read better with the side spelled out).
type RightTile<'f, const D: usize> = TileTree<'f, D>;

/// A decomposed (hot) tile: its trees are built (or borrowed) once up
/// front, then its subtasks interleave with whole tiles on the shared
/// queue.
enum HotWork<'f, const D: usize> {
    /// STT: both sides indexed; `seeds` are the root-level node pairs
    /// from [`stt_tasks`].
    Stt {
        left: TileTree<'f, D>,
        right: RightTile<'f, D>,
        seeds: Vec<(NodeId, NodeId)>,
    },
    /// INLJ: the right side indexed, the probe list cut into `chunk`-size
    /// subtasks.
    Inlj {
        right: RightTile<'f, D>,
        probes: Vec<Rect<D>>,
        chunk: usize,
    },
    /// Sweep: both sides columnar, the element scans of each side cut
    /// into x-range chunks ([`sweep_scan`] is counter-exact over any
    /// partition of the element ranges). `chunks` is empty when the
    /// tile pre-check pruned the whole sweep.
    Sweep {
        left: Arc<TileColumns<D>>,
        right: Arc<TileColumns<D>>,
        chunks: Vec<(SweepSide, usize, usize)>,
    },
}

struct HotTile<'f, const D: usize> {
    tile: usize,
    /// Root-level counters of the decomposition (directory accesses and
    /// clip prunes the subtasks must not re-count).
    base: JoinResult,
    work: HotWork<'f, D>,
}

/// One unit on the shared dynamic queue.
enum Task {
    /// A whole (cold) tile: build trees and join, as in PR 1.
    Tile(usize),
    /// One STT node-pair seed of a hot tile.
    SttSeed { hot: usize, seed: usize },
    /// One probe chunk of a hot INLJ tile.
    InljChunk { hot: usize, lo: usize, hi: usize },
    /// One element-range chunk of a hot sweep tile.
    SweepChunk { hot: usize, chunk: usize },
}

/// Cut `0..len` into `chunk`-size ranges tagged with `side`.
fn sweep_chunks(side: SweepSide, len: usize, chunk: usize) -> Vec<(SweepSide, usize, usize)> {
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        out.push((side, lo, hi));
        lo = hi;
    }
    out
}

/// Build the decomposed form of one hot tile. The tile's kernel is
/// resolved here with the same inputs as [`join_tile`], so hot and cold
/// tiles of one run always agree.
fn build_hot<'f, const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    tile: usize,
    left: &[Rect<D>],
    lsource: &'f LeftSource<'f, D>,
    right: &[Rect<D>],
    rsource: &'f RightSource<'f, D>,
) -> HotTile<'f, D> {
    let algo = resolve_tile_algo(
        plan.algo,
        &plan.auto,
        lsource.is_forest(),
        rsource.is_forest(),
        lsource.count(tile),
        rsource.count(tile),
    );
    match algo {
        TileAlgo::Stt => {
            let ltree = lsource.tile(plan, left, tile);
            let rtree = rsource.tile(plan, right, tile);
            let (mut base, seeds) = stt_tasks(ltree.get(), rtree.get(), plan.use_clips);
            base.tiles_stt += 1;
            HotTile {
                tile,
                base,
                work: HotWork::Stt {
                    left: ltree,
                    right: rtree,
                    seeds,
                },
            }
        }
        TileAlgo::Inlj => {
            let probes = lsource.probes(left, tile);
            let rtree = rsource.tile(plan, right, tile);
            // Aim for a few chunks per worker so the queue can rebalance.
            let chunk = probes.len().div_ceil((plan.workers * 4).max(1)).max(1);
            HotTile {
                tile,
                base: JoinResult {
                    tiles_inlj: 1,
                    ..JoinResult::default()
                },
                work: HotWork::Inlj {
                    right: rtree,
                    probes,
                    chunk,
                },
            }
        }
        TileAlgo::Sweep => {
            let lcols = lsource.columns(left, tile);
            let rcols = rsource.columns(right, tile);
            let (lclips, rclips) = if plan.use_clips {
                (lsource.root_clips(tile), rsource.root_clips(tile))
            } else {
                (&[][..], &[][..])
            };
            let (mut base, live) = sweep_precheck(&lcols, lclips, &rcols, rclips);
            base.tiles_sweep += 1;
            // Aim for a few chunks per worker across both sides' scans.
            let chunk = (lcols.len() + rcols.len())
                .div_ceil((plan.workers * 4).max(1))
                .max(1);
            let chunks = if live {
                let mut chunks = sweep_chunks(SweepSide::Left, lcols.len(), chunk);
                chunks.extend(sweep_chunks(SweepSide::Right, rcols.len(), chunk));
                chunks
            } else {
                Vec::new()
            };
            HotTile {
                tile,
                base,
                work: HotWork::Sweep {
                    left: lcols,
                    right: rcols,
                    chunks,
                },
            }
        }
    }
}

/// Run the partitioned parallel join of `left ⋈ right` under `plan`.
///
/// Returns the merged counters; `pairs` equals the sequential
/// `stt`/`inlj` (and brute-force) pair count exactly, for every
/// partitioner and split policy.
pub fn partitioned_join<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    partitioned_join_impl(plan, left, right, None, None)
}

/// [`partitioned_join`] with the right (indexed) side's per-tile trees
/// taken from a prebuilt [`TileForest`] instead of being rebuilt — the
/// repeat-join fast path. The forest must have been built over `right`
/// under `plan.partitioner` with `plan.tree`/`plan.clip` (tile counts
/// are checked; content correspondence is the caller's contract — a
/// [`ForestCache`] keyed by [`DataVersion`] maintains it).
///
/// Every counter of the returned [`JoinResult`] equals the build-per-call
/// path exactly; only the right-side build work (assignment + bulk
/// loading) is skipped.
pub fn partitioned_join_with<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
    forest: &TileForest<D>,
) -> JoinResult {
    assert_eq!(
        forest.tile_count(),
        plan.partitioner.tile_count(),
        "forest was built under a different partitioning"
    );
    partitioned_join_impl(plan, left, right, None, Some(forest))
}

/// The cross-dataset fast path: **both** sides come from prebuilt
/// [`TileForest`]s — nothing is assigned, nothing is bulk loaded. This
/// is what a catalog-serving layer runs for a cross-dataset join of two
/// datasets that share a tiling: the probe dataset's cached forest *is*
/// the per-tile left side a [`partitioned_join`] would have built, so
/// every counter of the returned [`JoinResult`] equals the
/// build-per-call path exactly (rect-identical trees traverse
/// identically; id values play no part in traversal or reference-point
/// dedup).
///
/// Every [`JoinAlgo`] is supported: STT borrows both trees, INLJ reads
/// its probe list from the probe forest's cached columns, the sweep
/// borrows both sides' cached [`TileColumns`], and [`JoinAlgo::Auto`]
/// sees two cached sides and resolves to STT. Both forests must be
/// tiled by `plan.partitioner` (tile counts are checked; content
/// correspondence is the caller's contract — a [`ForestCache`] keyed by
/// `(DatasetId, DataVersion)` maintains it).
///
/// `right` is the indexed side's object arena (tombstoned slots
/// included — only ids present in the forest's trees are ever looked
/// up).
pub fn partitioned_join_forests<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left_forest: &TileForest<D>,
    right: &[Rect<D>],
    right_forest: &TileForest<D>,
) -> JoinResult {
    for (side, forest) in [("left", left_forest), ("right", right_forest)] {
        assert_eq!(
            forest.tile_count(),
            plan.partitioner.tile_count(),
            "{side} forest was built under a different partitioning"
        );
    }
    partitioned_join_impl(plan, &[], right, Some(left_forest), Some(right_forest))
}

/// Where a join side's per-tile trees come from: a prebuilt (cached)
/// forest, or a fresh per-call assignment to build tile trees from. The
/// enum carries exactly one source, so per-tile lookups cannot
/// desynchronise from the setup path.
enum TileSource<'f, const D: usize> {
    Forest(&'f TileForest<D>),
    Assign(Vec<Vec<u32>>),
}

/// The two sides read the same source type; the aliases keep the setup
/// paths legible.
type LeftSource<'f, const D: usize> = TileSource<'f, D>;
type RightSource<'f, const D: usize> = TileSource<'f, D>;

impl<const D: usize> TileSource<'_, D> {
    /// Whether this side is forest-backed (trees and columns cached) —
    /// the cachedness input of [`JoinAlgo::Auto`] resolution.
    fn is_forest(&self) -> bool {
        matches!(self, TileSource::Forest(_))
    }

    /// Population of tile `t` on this side (0 for empty tiles).
    fn count(&self, t: usize) -> usize {
        match self {
            TileSource::Forest(f) => f.tree(t).map_or(0, |tree| tree.tree.len()),
            TileSource::Assign(assign) => assign[t].len(),
        }
    }

    /// The tree of a populated tile `t`: borrowed from the forest, or
    /// built from the assignment for this call.
    fn tile<'s, P: Partitioner<D>>(
        &'s self,
        plan: &JoinPlan<D, P>,
        objects: &[Rect<D>],
        t: usize,
    ) -> TileTree<'s, D> {
        match self {
            TileSource::Forest(f) => {
                TileTree::Cached(f.tree(t).expect("populated tile has a tree"))
            }
            TileSource::Assign(assign) => TileTree::Owned(build_tile_tree(
                objects,
                &assign[t],
                plan.tree,
                plan.clip,
                plan.use_clips,
            )),
        }
    }

    /// The raw probe rectangles of tile `t` (INLJ left side). A
    /// forest-backed side reads them from its cached columns (x-sorted
    /// order — INLJ's counters are order-independent sums, so this is
    /// indistinguishable from assignment order); an assigned side
    /// gathers them from the arena.
    fn probes(&self, objects: &[Rect<D>], t: usize) -> Vec<Rect<D>> {
        match self {
            TileSource::Forest(f) => f.columns(t).map(|c| c.rects()).unwrap_or_default(),
            TileSource::Assign(assign) => assign[t].iter().map(|&i| objects[i as usize]).collect(),
        }
    }

    /// The columnar SoA layout of tile `t` (sweep sides): shared from
    /// the forest's version-exact cache, or sorted from the assignment
    /// for this call. Both produce the identical canonical layout —
    /// [`TileColumns::from_items`] sorts by `(x-min, id)` regardless of
    /// input order.
    fn columns(&self, objects: &[Rect<D>], t: usize) -> Arc<TileColumns<D>> {
        match self {
            TileSource::Forest(f) => f.columns(t).expect("populated tile has columns"),
            TileSource::Assign(assign) => {
                let items: Vec<(Rect<D>, DataId)> = assign[t]
                    .iter()
                    .map(|&i| (objects[i as usize], DataId(i)))
                    .collect();
                Arc::new(TileColumns::from_items(&items))
            }
        }
    }

    /// The root clip points of tile `t`'s tree, for the sweep's tile
    /// pre-check. Only a forest-backed side has a tree to read them
    /// from; an assigned sweep side is index-less by design and prunes
    /// on the plain window only.
    fn root_clips(&self, t: usize) -> &[ClipPoint<D>] {
        match self {
            TileSource::Forest(f) => f
                .tree(t)
                .map(|tree| tree.clips_of(tree.tree.root_id()))
                .unwrap_or(&[]),
            TileSource::Assign(_) => &[],
        }
    }
}

fn partitioned_join_impl<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
    left_forest: Option<&TileForest<D>>,
    right_forest: Option<&TileForest<D>>,
) -> JoinResult {
    // Each side's per-tile population comes from its forest when given
    // (the trees hold exactly the assigned ids), otherwise from
    // assigning now.
    let lsource = match left_forest {
        Some(f) => LeftSource::Forest(f),
        None => LeftSource::Assign(plan.partitioner.assign(left)),
    };
    let source = match right_forest {
        Some(f) => RightSource::Forest(f),
        None => RightSource::Assign(plan.partitioner.assign(right)),
    };
    // Only tiles where both sides are populated can produce pairs.
    let mut tiles: Vec<usize> = (0..plan.partitioner.tile_count())
        .filter(|&t| lsource.count(t) > 0 && source.count(t) > 0)
        .collect();
    let weight = |t: usize| (lsource.count(t) as u64).saturating_mul(source.count(t) as u64);
    let total = tiles
        .iter()
        .fold(0u64, |acc, &t| acc.saturating_add(weight(t)));
    // Heaviest first (LPT): stragglers start before the queue drains.
    tiles.sort_by_key(|&t| std::cmp::Reverse(weight(t)));
    let (hot_tiles, cold_tiles): (Vec<usize>, Vec<usize>) =
        match plan.split.threshold(total, plan.workers) {
            Some(thr) => tiles.into_iter().partition(|&t| weight(t) > thr),
            None => (Vec::new(), tiles),
        };

    // Level 1: build hot tiles' trees/columns in parallel and decompose
    // them.
    let hot: Vec<HotTile<D>> = map_chunked(plan.workers, &hot_tiles, |_, chunk| {
        chunk
            .iter()
            .map(|&t| build_hot(plan, t, left, &lsource, right, &source))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // Level 2: one shared dynamic queue over hot subtasks (first — they
    // belong to the heaviest tiles) and whole cold tiles.
    let mut tasks: Vec<Task> = Vec::new();
    for (h, ht) in hot.iter().enumerate() {
        match &ht.work {
            HotWork::Stt { seeds, .. } => {
                tasks.extend((0..seeds.len()).map(|seed| Task::SttSeed { hot: h, seed }));
            }
            HotWork::Inlj { probes, chunk, .. } => {
                let mut lo = 0;
                while lo < probes.len() {
                    let hi = (lo + chunk).min(probes.len());
                    tasks.push(Task::InljChunk { hot: h, lo, hi });
                    lo = hi;
                }
            }
            HotWork::Sweep { chunks, .. } => {
                tasks.extend((0..chunks.len()).map(|chunk| Task::SweepChunk { hot: h, chunk }));
            }
        }
    }
    tasks.extend(cold_tiles.iter().map(|&t| Task::Tile(t)));

    let parts = fold_dynamic_tasks(
        plan.workers,
        &tasks,
        JoinResult::default,
        |task, acc: &mut JoinResult| match *task {
            Task::Tile(t) => {
                *acc += join_tile(plan, t, left, &lsource, right, &source);
            }
            Task::SttSeed { hot: h, seed } => {
                let ht = &hot[h];
                let HotWork::Stt {
                    left: ltree,
                    right: rtree,
                    seeds,
                } = &ht.work
                else {
                    unreachable!("STT seed on a non-STT tile");
                };
                let (lid, rid) = seeds[seed];
                *acc += stt_filtered_from(
                    ltree.get(),
                    lid,
                    rtree.get(),
                    rid,
                    plan.use_clips,
                    |a, b| plan.partitioner.owns(ht.tile, &reference_point(a, b)),
                );
            }
            Task::InljChunk { hot: h, lo, hi } => {
                let ht = &hot[h];
                let HotWork::Inlj {
                    right: rtree,
                    probes,
                    ..
                } = &ht.work
                else {
                    unreachable!("INLJ chunk on a non-INLJ tile");
                };
                *acc += inlj_filtered(&probes[lo..hi], rtree.get(), plan.use_clips, |probe, id| {
                    plan.partitioner
                        .owns(ht.tile, &reference_point(probe, &right[id.0 as usize]))
                });
            }
            Task::SweepChunk { hot: h, chunk } => {
                let ht = &hot[h];
                let HotWork::Sweep {
                    left: lcols,
                    right: rcols,
                    chunks,
                } = &ht.work
                else {
                    unreachable!("sweep chunk on a non-sweep tile");
                };
                let (side, lo, hi) = chunks[chunk];
                *acc += sweep_scan(lcols, rcols, side, lo, hi, |a, b| {
                    plan.partitioner.owns(ht.tile, &reference_point(a, b))
                });
            }
        },
    );
    let mut result: JoinResult = parts.into_iter().sum();
    for ht in &hot {
        result += ht.base;
    }
    result
}

/// Join one whole tile: resolve the kernel ([`resolve_tile_algo`] —
/// identical inputs to [`build_hot`], so hot and cold tiles of one run
/// agree), source only what that kernel needs (trees, probe list, or
/// columns), and run it with the reference-point ownership filter.
fn join_tile<const D: usize, P: Partitioner<D>>(
    plan: &JoinPlan<D, P>,
    tile: usize,
    left: &[Rect<D>],
    lsource: &LeftSource<'_, D>,
    right: &[Rect<D>],
    rsource: &RightSource<'_, D>,
) -> JoinResult {
    let algo = resolve_tile_algo(
        plan.algo,
        &plan.auto,
        lsource.is_forest(),
        rsource.is_forest(),
        lsource.count(tile),
        rsource.count(tile),
    );
    match algo {
        TileAlgo::Stt => {
            let ltree = lsource.tile(plan, left, tile);
            let rtree = rsource.tile(plan, right, tile);
            let mut result = stt_filtered(ltree.get(), rtree.get(), plan.use_clips, |a, b| {
                plan.partitioner.owns(tile, &reference_point(a, b))
            });
            result.tiles_stt += 1;
            result
        }
        TileAlgo::Inlj => {
            let probes = lsource.probes(left, tile);
            let rtree = rsource.tile(plan, right, tile);
            let mut result = inlj_filtered(&probes, rtree.get(), plan.use_clips, |probe, id| {
                plan.partitioner
                    .owns(tile, &reference_point(probe, &right[id.0 as usize]))
            });
            result.tiles_inlj += 1;
            result
        }
        TileAlgo::Sweep => {
            let lcols = lsource.columns(left, tile);
            let rcols = rsource.columns(right, tile);
            let (lclips, rclips) = if plan.use_clips {
                (lsource.root_clips(tile), rsource.root_clips(tile))
            } else {
                (&[][..], &[][..])
            };
            let (mut result, live) = sweep_precheck(&lcols, lclips, &rcols, rclips);
            result.tiles_sweep += 1;
            if live {
                let keep =
                    |a: &Rect<D>, b: &Rect<D>| plan.partitioner.owns(tile, &reference_point(a, b));
                result += sweep_scan(&lcols, &rcols, SweepSide::Left, 0, lcols.len(), keep);
                result += sweep_scan(&lcols, &rcols, SweepSide::Right, 0, rcols.len(), keep);
            }
            result
        }
    }
}

/// The key a cached forest is filed under: *which* dataset, at *which*
/// version. Dataset ids are catalog-unique forever (never reused after
/// a drop), so a key can never alias another dataset's trees.
pub type ForestKey = (DatasetId, DataVersion);

/// A bounded LRU [`TileForest`] cache keyed by `(DatasetId,
/// DataVersion)`: the closing piece of the ROADMAP's "cache keyed by
/// data version" item, grown a capacity bound for the mutable-store era
/// and a dataset dimension for the catalog era.
///
/// A serving layer calls [`ForestCache::get_or_build`] with a dataset's
/// id and current version on every request that needs per-tile trees.
/// While a key stays cached its `Arc` is returned (a *hit* — no
/// assignment, no bulk loading); a miss builds, stores, and evicts the
/// least-recently-used key beyond [`ForestCache::capacity`]. Delta
/// maintenance installs its freshly derived forests with
/// [`ForestCache::insert`] — those count as neither build nor hit,
/// which is exactly the point: an update batch produces a new version
/// *without* a rebuild. Dropping a dataset calls
/// [`ForestCache::evict_dataset`] so dead layers stop occupying slots.
///
/// Capacity is accounted **per key**: two hot datasets each pinning a
/// version or two coexist in a capacity-4 cache without thrashing each
/// other, because recency is tracked per `(dataset, version)` entry,
/// not per dataset. The capacity bound is what keeps a long-running
/// service with frequent version bumps from retaining every forest it
/// ever served: per-tile `Arc` sharing makes consecutive versions
/// cheap, but a thousand epochs of unshared tiles are not. Interior
/// mutability (mutex + atomic counters) lets many executor threads
/// share one cache behind an `Arc` or a read lock.
pub struct ForestCache<const D: usize> {
    /// Most-recently-used first.
    slots: Mutex<Vec<(ForestKey, Arc<TileForest<D>>)>>,
    capacity: usize,
    builds: AtomicU64,
    hits: AtomicU64,
}

/// Versions retained by default: the live one plus a few predecessors
/// still referenced by in-flight batches.
pub const DEFAULT_FOREST_CACHE_CAPACITY: usize = 4;

impl<const D: usize> Default for ForestCache<D> {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FOREST_CACHE_CAPACITY)
    }
}

impl<const D: usize> ForestCache<D> {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` versions (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a cache needs room for one forest");
        ForestCache {
            slots: Mutex::new(Vec::new()),
            capacity,
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained versions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("forest cache poisoned").len()
    }

    /// Whether no version is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// File `forest` as the most-recently-used entry for `key` (evicting
    /// the LRU entry over capacity). The **one** shared insertion path:
    /// `get_or_build` misses and externally supplied forests go through
    /// the same bookkeeping, and neither touches the build/hit counters
    /// here — each public door accounts for itself, exactly once. In
    /// particular, lazily extracting a cached forest's [`TileColumns`]
    /// never re-files or re-counts anything: columns live *inside* the
    /// entry, version-exact with its trees.
    fn file_mru(
        &self,
        slots: &mut Vec<(ForestKey, Arc<TileForest<D>>)>,
        key: ForestKey,
        forest: Arc<TileForest<D>>,
    ) {
        slots.retain(|(k, _)| *k != key);
        slots.insert(0, (key, forest));
        slots.truncate(self.capacity);
    }

    /// The forest for `key`: the cached one when present (refreshed to
    /// most-recently-used), otherwise `build()` (stored, evicting the
    /// LRU key over capacity). The build runs under the cache lock —
    /// concurrent requesters of the same key wait and then hit.
    pub fn get_or_build(
        &self,
        key: ForestKey,
        build: impl FnOnce() -> TileForest<D>,
    ) -> Arc<TileForest<D>> {
        let mut slots = self.slots.lock().expect("forest cache poisoned");
        if let Some(pos) = slots.iter().position(|(k, _)| *k == key) {
            let hit = slots.remove(pos);
            let forest = hit.1.clone();
            slots.insert(0, hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return forest;
        }
        let forest = Arc::new(build());
        self.file_mru(&mut slots, key, forest.clone());
        self.builds.fetch_add(1, Ordering::Relaxed);
        forest
    }

    /// Store an externally produced forest (a delta-applied one) as the
    /// most-recently-used entry for `key`, evicting over capacity.
    /// Counts as neither a build nor a hit.
    pub fn insert(&self, key: ForestKey, forest: Arc<TileForest<D>>) {
        let mut slots = self.slots.lock().expect("forest cache poisoned");
        self.file_mru(&mut slots, key, forest);
    }

    /// Drop every cached version of one dataset (the `DropDataset`
    /// companion — a dead layer must not occupy LRU slots).
    pub fn evict_dataset(&self, dataset: DatasetId) {
        self.slots
            .lock()
            .expect("forest cache poisoned")
            .retain(|((d, _), _)| *d != dataset);
    }

    /// Number of forest builds performed (misses), over the cache's
    /// lifetime. The "trees were NOT rebuilt" assertion of cache tests.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of cache hits (requests served without building).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drop every cached forest (next requests build regardless of
    /// version).
    pub fn invalidate(&self) {
        self.slots.lock().expect("forest cache poisoned").clear();
    }
}

/// Sequential baseline with the same per-tile index configuration: one
/// global tree per side, one thread, no partitioning. Used by benches and
/// tests as the ground truth the partitioned join must reproduce.
pub fn sequential_join<const D: usize, P>(
    plan: &JoinPlan<D, P>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    let all_left: Vec<u32> = (0..left.len() as u32).collect();
    let all_right: Vec<u32> = (0..right.len() as u32).collect();
    // The whole input is one logical tile, so the run reports one
    // `tiles_*` tick — a 1×1-grid partitioned join is byte-identical.
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = build_tile_tree(left, &all_left, plan.tree, plan.clip, plan.use_clips);
            let rtree = build_tile_tree(right, &all_right, plan.tree, plan.clip, plan.use_clips);
            let mut result = cbb_joins::stt(&ltree, &rtree, plan.use_clips);
            result.tiles_stt += 1;
            result
        }
        JoinAlgo::Inlj => {
            let rtree = build_tile_tree(right, &all_right, plan.tree, plan.clip, plan.use_clips);
            let mut result = cbb_joins::inlj(left, &rtree, plan.use_clips);
            result.tiles_inlj += 1;
            result
        }
        // Sequentially nothing is cached, which is precisely the state
        // Auto resolves to a sweep for — so both run the one global
        // sweep, index-less (no trees means no clip tables either).
        JoinAlgo::Sweep | JoinAlgo::Auto => {
            let to_items = |objects: &[Rect<D>], ids: &[u32]| -> Vec<(Rect<D>, DataId)> {
                ids.iter()
                    .map(|&i| (objects[i as usize], DataId(i)))
                    .collect()
            };
            let lcols = TileColumns::from_items(&to_items(left, &all_left));
            let rcols = TileColumns::from_items(&to_items(right, &all_right));
            let (mut result, live) = sweep_precheck(&lcols, &[], &rcols, &[]);
            result.tiles_sweep += 1;
            if live {
                result += cbb_joins::sweep(&lcols, &rcols);
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveGrid;
    use crate::quadtree::QuadtreePartitioner;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_joins::brute_force_pairs;
    use cbb_rtree::Variant;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64, max_side: f64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 480.0);
                let y = rng.gen_range(0.0, 480.0);
                let w = rng.gen_range(0.5, max_side);
                let h = rng.gen_range(0.5, max_side);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    /// ~70 % of objects in one corner blob: guarantees a hot tile.
    fn clustered_boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let (cx, cy, s) = if rng.gen_range(0.0, 1.0) < 0.7 {
                    (60.0, 60.0, 30.0)
                } else {
                    (250.0, 250.0, 240.0)
                };
                let x = (cx + rng.gen_range(-s, s)).clamp(0.0, 480.0);
                let y = (cy + rng.gen_range(-s, s)).clamp(0.0, 480.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.5, 15.0),
                    y + rng.gen_range(0.5, 15.0),
                )
            })
            .collect()
    }

    fn plan2(per_dim: usize, workers: usize) -> JoinPlan<2> {
        JoinPlan::new(
            UniformGrid::new(r2(0.0, 0.0, 500.0, 500.0), per_dim),
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
            workers,
        )
    }

    const ALL_ALGOS: [JoinAlgo; 4] = [
        JoinAlgo::Stt,
        JoinAlgo::Inlj,
        JoinAlgo::Sweep,
        JoinAlgo::Auto,
    ];

    #[test]
    fn matches_brute_force_for_every_algo() {
        let a = boxes(250, 1, 20.0);
        let b = boxes(300, 2, 20.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in ALL_ALGOS {
            for workers in [1, 4] {
                let plan = plan2(4, workers).with_algo(algo);
                assert_eq!(
                    partitioned_join(&plan, &a, &b).pairs,
                    expected,
                    "{algo:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn wide_spanning_objects_do_not_double_count() {
        // Sides up to 150 over 125-wide tiles: most objects span tiles.
        let a = boxes(120, 3, 150.0);
        let b = boxes(140, 4, 150.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in ALL_ALGOS {
            let plan = plan2(4, 3).with_algo(algo);
            assert_eq!(partitioned_join(&plan, &a, &b).pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn unclipped_plan_matches_too() {
        let a = boxes(200, 5, 25.0);
        let b = boxes(200, 6, 25.0);
        let expected = brute_force_pairs(&a, &b);
        let plan = plan2(3, 2).with_clips(false);
        let res = partitioned_join(&plan, &a, &b);
        assert_eq!(res.pairs, expected);
        assert_eq!(res.clip_prunes, 0, "no clips, no prunes");
    }

    #[test]
    fn empty_inputs() {
        let a = boxes(50, 7, 20.0);
        let plan = plan2(4, 2);
        assert_eq!(partitioned_join(&plan, &a, &[]).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &a).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &[]), JoinResult::default());
    }

    #[test]
    fn sequential_baseline_agrees() {
        let a = boxes(180, 8, 30.0);
        let b = boxes(220, 9, 30.0);
        for algo in ALL_ALGOS {
            let plan = plan2(4, 4).with_algo(algo);
            assert_eq!(
                sequential_join(&plan, &a, &b).pairs,
                partitioned_join(&plan, &a, &b).pairs,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn decomposition_is_counter_exact() {
        // The two-level scheduler must not change *any* counter relative
        // to whole-tile execution — same trees/columns, same traversals
        // and scans, only the work order differs. Auto qualifies too:
        // resolution reads only per-tile facts, so hot and cold paths
        // pick the same kernel.
        let a = clustered_boxes(500, 10);
        let b = clustered_boxes(550, 11);
        for algo in ALL_ALGOS {
            for workers in [2, 4] {
                let never = plan2(4, workers)
                    .with_algo(algo)
                    .with_split(SplitPolicy::Never);
                let auto = never.with_split(SplitPolicy::Auto);
                let eager = never.with_split(SplitPolicy::Above(0));
                let base = partitioned_join(&never, &a, &b);
                assert_eq!(partitioned_join(&auto, &a, &b), base, "{algo:?} auto");
                assert_eq!(partitioned_join(&eager, &a, &b), base, "{algo:?} eager");
            }
        }
    }

    #[test]
    fn eager_split_decomposes_every_tile() {
        // Above(0) forces every non-empty tile through the decomposition
        // path; pair counts must still be exact.
        let a = boxes(200, 12, 40.0);
        let b = boxes(200, 13, 40.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in ALL_ALGOS {
            let plan = plan2(3, 4)
                .with_algo(algo)
                .with_split(SplitPolicy::Above(0));
            assert_eq!(partitioned_join(&plan, &a, &b).pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn adaptive_and_quadtree_partitioners_join_exactly() {
        let a = clustered_boxes(400, 14);
        let b = clustered_boxes(450, 15);
        let expected = brute_force_pairs(&a, &b);
        let domain = r2(0.0, 0.0, 500.0, 500.0);
        let adaptive = AdaptiveGrid::from_sample(domain, [4, 4], &a);
        let quadtree = QuadtreePartitioner::build(domain, &a, 120);
        for algo in ALL_ALGOS {
            let plan = JoinPlan::new(
                adaptive.clone(),
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&plan, &a, &b).pairs,
                expected,
                "adaptive {algo:?}"
            );
            let plan = JoinPlan::new(
                quadtree.clone(),
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&plan, &a, &b).pairs,
                expected,
                "quadtree {algo:?}"
            );
        }
    }

    #[test]
    fn forest_join_is_counter_exact() {
        // Joining against a prebuilt forest must reproduce EVERY counter
        // of the build-per-call path, for both algorithms, clipped and
        // not, across split policies — same trees, same traversals.
        let a = clustered_boxes(400, 20);
        let b = clustered_boxes(450, 21);
        let base_plan = plan2(4, 3);
        let forest = TileForest::build(
            &base_plan.partitioner,
            &b,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for use_clips in [true, false] {
                for split in [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)] {
                    let plan = base_plan
                        .with_algo(algo)
                        .with_clips(use_clips)
                        .with_split(split);
                    let direct = partitioned_join(&plan, &a, &b);
                    let cached = partitioned_join_with(&plan, &a, &b, &forest);
                    assert_eq!(cached, direct, "{algo:?} clips={use_clips} {split:?}");
                }
            }
        }
        // The sweep is byte-equal too when clips are off (cached columns
        // and per-call columns share one canonical sort). With clips on,
        // only the forest-backed side has a tree to read root clip
        // points from, so pruned-tile work may differ — but never pairs.
        for split in [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)] {
            let plan = base_plan
                .with_algo(JoinAlgo::Sweep)
                .with_clips(false)
                .with_split(split);
            assert_eq!(
                partitioned_join_with(&plan, &a, &b, &forest),
                partitioned_join(&plan, &a, &b),
                "sweep unclipped {split:?}"
            );
            let clipped = plan.with_clips(true);
            assert_eq!(
                partitioned_join_with(&clipped, &a, &b, &forest).pairs,
                partitioned_join(&clipped, &a, &b).pairs,
                "sweep clipped {split:?}"
            );
        }
        // Auto may resolve differently depending on which sides are
        // cached — the pair set must not notice.
        let auto_plan = base_plan.with_algo(JoinAlgo::Auto);
        assert_eq!(
            partitioned_join_with(&auto_plan, &a, &b, &forest).pairs,
            partitioned_join(&auto_plan, &a, &b).pairs,
            "auto cached vs direct"
        );
    }

    #[test]
    fn forest_join_handles_empty_probe_side() {
        let b = boxes(120, 22, 25.0);
        let plan = plan2(3, 2);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        assert_eq!(
            partitioned_join_with(&plan, &[], &b, &forest),
            JoinResult::default()
        );
    }

    #[test]
    #[should_panic(expected = "different partitioning")]
    fn forest_join_rejects_mismatched_tiling() {
        let b = boxes(50, 23, 20.0);
        let plan = plan2(4, 2);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        let other = plan2(5, 2);
        let _ = partitioned_join_with(&other, &b, &b, &forest);
    }

    #[test]
    fn forests_join_is_counter_exact_for_both_sides_cached() {
        // The cross-dataset STT fast path: BOTH sides served from
        // prebuilt forests must reproduce EVERY counter of the
        // build-per-call join, clipped and not, across split policies.
        let a = clustered_boxes(380, 30);
        let b = clustered_boxes(420, 31);
        let base_plan = plan2(4, 3);
        let left_forest = TileForest::build(
            &base_plan.partitioner,
            &a,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        let right_forest = TileForest::build(
            &base_plan.partitioner,
            &b,
            base_plan.tree,
            base_plan.clip,
            3,
        );
        for use_clips in [true, false] {
            for split in [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)] {
                let plan = base_plan.with_clips(use_clips).with_split(split);
                let direct = partitioned_join(&plan, &a, &b);
                let cached = partitioned_join_forests(&plan, &left_forest, &b, &right_forest);
                assert_eq!(cached, direct, "clips={use_clips} {split:?}");
            }
        }
        assert_eq!(
            partitioned_join_forests(&base_plan, &left_forest, &b, &right_forest).pairs,
            brute_force_pairs(&a, &b)
        );
    }

    #[test]
    fn forests_join_supports_every_algo() {
        // PR 5 left INLJ (and now the sweep) off the both-sides-cached
        // path; every algorithm now runs forest-native. INLJ reads its
        // probes from the probe forest's columns (x-sorted — its
        // counters are order-independent sums, so still byte-equal to
        // the build-per-call run); Auto sees two cached sides and
        // resolves to STT.
        let a = clustered_boxes(300, 32);
        let b = clustered_boxes(340, 33);
        let base_plan = plan2(4, 2);
        let lf = TileForest::build(
            &base_plan.partitioner,
            &a,
            base_plan.tree,
            base_plan.clip,
            2,
        );
        let rf = TileForest::build(
            &base_plan.partitioner,
            &b,
            base_plan.tree,
            base_plan.clip,
            2,
        );
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = base_plan.with_algo(algo);
            let direct = partitioned_join(&plan, &a, &b);
            let cached = partitioned_join_forests(&plan, &lf, &b, &rf);
            assert_eq!(cached, direct, "{algo:?}");
            assert_eq!(cached.pairs, expected, "{algo:?}");
        }
        let sweep_plan = base_plan.with_algo(JoinAlgo::Sweep).with_clips(false);
        assert_eq!(
            partitioned_join_forests(&sweep_plan, &lf, &b, &rf),
            partitioned_join(&sweep_plan, &a, &b),
            "sweep unclipped"
        );
        for algo in [JoinAlgo::Sweep, JoinAlgo::Auto] {
            let plan = base_plan.with_algo(algo);
            let cached = partitioned_join_forests(&plan, &lf, &b, &rf);
            assert_eq!(cached.pairs, expected, "{algo:?}");
        }
        // Auto with both sides cached is STT on every populated tile.
        let auto = partitioned_join_forests(&base_plan.with_algo(JoinAlgo::Auto), &lf, &b, &rf);
        assert!(auto.tiles_stt > 0);
        assert_eq!(auto.tiles_inlj + auto.tiles_sweep, 0);
    }

    #[test]
    fn auto_resolution_follows_cachedness_and_cardinality() {
        // Direct join: nothing cached → every tile sweeps.
        let a = boxes(200, 34, 25.0);
        let b = boxes(240, 35, 25.0);
        let plan = plan2(4, 2).with_algo(JoinAlgo::Auto);
        let direct = partitioned_join(&plan, &a, &b);
        assert!(direct.tiles_sweep > 0);
        assert_eq!(direct.tiles_stt + direct.tiles_inlj, 0);

        // Tiny probe set against a cached forest → INLJ tiles (1/8
        // ratio met wherever the probe tile is small enough).
        let probe = boxes(8, 36, 25.0);
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        let asym = partitioned_join_with(&plan, &probe, &b, &forest);
        assert!(asym.tiles_inlj > 0, "small probes should index-probe");
        assert_eq!(asym.tiles_stt, 0, "one cached side is never STT");

        // Balanced sides with only the right cached → the ratio fails
        // and the sweep takes over.
        let balanced = partitioned_join_with(&plan, &a, &b, &forest);
        assert!(balanced.tiles_sweep > 0);
        assert_eq!(balanced.pairs, brute_force_pairs(&a, &b));
    }

    /// The named [`AutoPolicy`] replaced hard-coded `Auto` thresholds;
    /// the default must reproduce them byte-for-byte, and a plan built
    /// without [`JoinPlan::with_auto`] must behave identically to one
    /// carrying an explicit default policy.
    #[test]
    fn default_auto_policy_reproduces_legacy_thresholds() {
        assert_eq!(
            AutoPolicy::default(),
            AutoPolicy {
                inlj_probe_ratio: 8,
                fuse_min_queries: 4,
                fuse_cold_ratio: 8,
            }
        );
        // The INLJ resolution table of the previous hard-coded 8×
        // ratio, spelled out: probes × 8 ≤ tile cardinality.
        let p = AutoPolicy::default();
        for (probes, tile, expect_inlj) in
            [(1, 8, true), (1, 7, false), (10, 80, true), (10, 79, false)]
        {
            assert_eq!(
                probes * p.inlj_probe_ratio <= tile,
                expect_inlj,
                "probes={probes} tile={tile}"
            );
        }
        // Fusion gate: width below the minimum never fuses; at the
        // minimum, cold tiles need the 8× cardinality bound and warm
        // tiles always fuse.
        assert!(!p.fuse_tile(3, 0, true));
        assert!(p.fuse_tile(4, 1_000_000, true));
        assert!(p.fuse_tile(4, 32, false));
        assert!(!p.fuse_tile(4, 33, false));

        let a = boxes(200, 34, 25.0);
        let b = boxes(240, 35, 25.0);
        let plan = plan2(4, 2).with_algo(JoinAlgo::Auto);
        let explicit = plan.with_auto(AutoPolicy::default());
        let forest = TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2);
        let default_run = partitioned_join_with(&plan, &a, &b, &forest);
        let explicit_run = partitioned_join_with(&explicit, &a, &b, &forest);
        assert_eq!(default_run, explicit_run);
        // A policy with a stricter ratio moves tiles off INLJ — the
        // knob is live, not decorative.
        let strict = plan.with_auto(AutoPolicy {
            inlj_probe_ratio: usize::MAX,
            ..AutoPolicy::default()
        });
        let probe = boxes(8, 36, 25.0);
        let strict_run = partitioned_join_with(&strict, &probe, &b, &forest);
        assert_eq!(strict_run.tiles_inlj, 0, "MAX ratio must disable INLJ");
        assert_eq!(
            strict_run.pairs,
            partitioned_join_with(&plan, &probe, &b, &forest).pairs
        );
    }

    #[test]
    fn tile_algo_counters_count_each_populated_tile_once() {
        let a = clustered_boxes(300, 37);
        let b = clustered_boxes(320, 38);
        let base_plan = plan2(4, 3);
        let la = base_plan.partitioner.assign(&a);
        let lb = base_plan.partitioner.assign(&b);
        let populated = (0..base_plan.partitioner.tile_count())
            .filter(|&t| !la[t].is_empty() && !lb[t].is_empty())
            .count() as u64;
        for algo in ALL_ALGOS {
            for split in [SplitPolicy::Never, SplitPolicy::Above(0)] {
                let res = partitioned_join(&base_plan.with_algo(algo).with_split(split), &a, &b);
                assert_eq!(
                    res.tiles_stt + res.tiles_inlj + res.tiles_sweep,
                    populated,
                    "{algo:?} {split:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_join_exactly_for_every_algo() {
        // Zero-extent rectangles, exact duplicates, x-min ties, and
        // tile-spanning giants — the sweep's tie-breaks and the dedup
        // filter must agree with brute force for every kernel.
        let mut a = boxes(60, 39, 150.0);
        a.push(r2(100.0, 100.0, 100.0, 100.0)); // zero extent
        a.push(r2(100.0, 100.0, 100.0, 100.0)); // duplicate of it
        a.push(r2(0.0, 0.0, 500.0, 500.0)); // spans every tile
        let dup = a[0];
        a.push(dup);
        let mut b = boxes(70, 40, 150.0);
        b.push(r2(100.0, 100.0, 100.0, 100.0));
        b.push(r2(250.0, 0.0, 250.0, 500.0)); // zero-width full-height sliver
        let expected = brute_force_pairs(&a, &b);
        for algo in ALL_ALGOS {
            for use_clips in [true, false] {
                let plan = plan2(4, 2).with_algo(algo).with_clips(use_clips);
                assert_eq!(
                    partitioned_join(&plan, &a, &b).pairs,
                    expected,
                    "{algo:?} clips={use_clips}"
                );
            }
        }
    }

    /// Key helper: dataset `d` at version `v`.
    fn key(d: u32, v: u64) -> ForestKey {
        (DatasetId(d), DataVersion(v))
    }

    #[test]
    fn forest_cache_columns_access_is_stat_neutral() {
        // Regression for the one-door bookkeeping: lazily extracting a
        // cached forest's columns (as every sweep over a cached side
        // does) must count as neither a build nor a hit — the columns
        // live inside the entry, not beside it. Only get_or_build moves
        // the counters; insert() never does.
        let b = boxes(120, 50, 25.0);
        let plan = plan2(3, 2);
        let cache: ForestCache<2> = ForestCache::new();
        let forest = cache.get_or_build(key(1, 1), || {
            TileForest::build(&plan.partitioner, &b, plan.tree, plan.clip, 2)
        });
        assert_eq!((cache.builds(), cache.hits()), (1, 0));
        let populated = (0..forest.tile_count())
            .find(|&t| forest.tree(t).is_some())
            .expect("some tile is populated");
        let cols = forest
            .columns(populated)
            .expect("populated tile has columns");
        assert!(!cols.is_empty());
        assert_eq!(
            (cache.builds(), cache.hits()),
            (1, 0),
            "columns extraction is not a cache event"
        );
        cache.insert(key(1, 2), forest.clone());
        assert_eq!(
            (cache.builds(), cache.hits()),
            (1, 0),
            "insert counts as neither build nor hit"
        );
        let again = cache.get_or_build(key(1, 2), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&again, &forest));
        assert_eq!((cache.builds(), cache.hits()), (1, 1));
    }

    #[test]
    fn forest_cache_hits_and_invalidates_by_version() {
        let a = boxes(150, 24, 25.0);
        let b = boxes(180, 25, 25.0);
        let plan = plan2(4, 2);
        let cache: ForestCache<2> = ForestCache::new();
        let ds = DatasetId(7);
        let mut version = DataVersion::initial();
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        // Three joins on one version: one build, two hits, stable result.
        let r1 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        let r2 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        let r3 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        assert_eq!((cache.builds(), cache.hits()), (1, 2));
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(r1.pairs, brute_force_pairs(&a, &b));
        // Version bump: rebuild once, then hit again.
        version.bump();
        let r4 = partitioned_join_with(
            &plan,
            &a,
            &b,
            &cache.get_or_build((ds, version), || build(&b)),
        );
        assert_eq!((cache.builds(), cache.hits()), (2, 2));
        assert_eq!(r4, r1, "same data under a new version joins identically");
        let _ = cache.get_or_build((ds, version), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (2, 3));
        // The same version under a DIFFERENT dataset id is a different
        // key: a miss, not a hit.
        let _ = cache.get_or_build((DatasetId(8), version), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (3, 3));
        // Explicit invalidation forces a rebuild of the same key.
        cache.invalidate();
        let _ = cache.get_or_build((ds, version), || build(&b));
        assert_eq!(cache.builds(), 4);
    }

    #[test]
    fn forest_cache_lru_caps_retained_versions() {
        let b = boxes(120, 26, 25.0);
        let plan = plan2(3, 2);
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        let cache: ForestCache<2> = ForestCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert!(cache.is_empty());
        // Three distinct versions through a capacity-2 cache: the
        // oldest is evicted, memory stays bounded.
        for v in 0..3 {
            let _ = cache.get_or_build(key(0, v), || build(&b));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 3);
        // v0 was evicted: requesting it again is a miss (a rebuild).
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 4);
        // v2 was refreshed by nothing — v1 is now LRU and got evicted
        // by v0's reinsertion; v2 is still a hit.
        let _ = cache.get_or_build(key(0, 2), || build(&b));
        assert_eq!((cache.builds(), cache.hits()), (4, 1));
        // A hit refreshes recency: touch v0, insert a new version, and
        // v2 (not v0) is the one gone.
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        let _ = cache.get_or_build(key(0, 9), || build(&b));
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 5, "v0 must still be resident");
        // `insert` (the delta path) stores without counting a build and
        // still respects the cap; re-inserting a key replaces it.
        cache.insert(key(0, 50), Arc::new(build(&b)));
        cache.insert(key(0, 50), Arc::new(build(&b)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.builds(), 5);
        let _ = cache.get_or_build(key(0, 50), || build(&b));
        assert_eq!(cache.builds(), 5, "inserted version is a hit");
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
    }

    #[test]
    fn forest_cache_two_hot_datasets_do_not_thrash() {
        // The multi-dataset LRU satellite: two datasets, each pinning
        // two live versions, interleaved hard against a capacity-4
        // cache — after the four initial builds every access is a hit;
        // neither dataset can push the other's forests out.
        let b = boxes(100, 27, 25.0);
        let plan = plan2(3, 2);
        let build =
            |data: &[Rect<2>]| TileForest::build(&plan.partitioner, data, plan.tree, plan.clip, 2);
        let cache: ForestCache<2> = ForestCache::with_capacity(4);
        let hot = [key(0, 0), key(1, 0), key(0, 1), key(1, 1)];
        for round in 0..6 {
            // Vary the interleaving order per round: A,B,A,B then
            // B,A,B,A — recency churn across datasets, same working set.
            let order: Vec<ForestKey> = if round % 2 == 0 {
                hot.to_vec()
            } else {
                hot.iter().rev().copied().collect()
            };
            for k in order {
                let _ = cache.get_or_build(k, || build(&b));
            }
        }
        assert_eq!(
            (cache.builds(), cache.hits()),
            (4, 20),
            "a capacity-4 working set of 4 keys never rebuilds"
        );
        assert_eq!(cache.len(), 4);

        // A fifth key evicts exactly the LRU entry. After the last
        // round the access order (old→new) was (1,1),(0,1),(1,0),(0,0)
        // — so (1,1) is the LRU victim.
        let _ = cache.get_or_build(key(2, 0), || build(&b));
        assert_eq!(cache.builds(), 5);
        let _ = cache.get_or_build(key(1, 1), || build(&b));
        assert_eq!(cache.builds(), 6, "(1,1) was the evicted LRU entry");
        // ... which in turn displaced (0,1), the next-oldest; dataset
        // 0's most recent version is still resident.
        let _ = cache.get_or_build(key(0, 0), || build(&b));
        assert_eq!(cache.builds(), 6, "(0,0) survived both evictions");
        let _ = cache.get_or_build(key(0, 1), || build(&b));
        assert_eq!(cache.builds(), 7, "(0,1) was displaced second");

        // evict_dataset drops only that dataset's keys.
        let before = cache.len();
        cache.evict_dataset(DatasetId(0));
        assert!(cache.len() < before);
        let _ = cache.get_or_build(key(1, 1), || build(&b));
        assert_eq!(cache.builds(), 7, "dataset 1 untouched by the eviction");
        let _ = cache.get_or_build(key(0, 1), || build(&b));
        assert_eq!(cache.builds(), 8, "dataset 0 keys are gone");
    }

    #[test]
    fn split_policy_thresholds() {
        assert_eq!(SplitPolicy::Never.threshold(1_000, 8), None);
        assert_eq!(SplitPolicy::Auto.threshold(1_000, 1), None);
        assert_eq!(SplitPolicy::Auto.threshold(1_000, 4), Some(125));
        assert_eq!(SplitPolicy::Above(7).threshold(1_000, 1), Some(7));
    }
}
