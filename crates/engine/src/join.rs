//! Partition-parallel spatial join.
//!
//! The input rectangle sets are multi-assigned to the tiles of a
//! [`UniformGrid`], a clipped R-tree is bulk-loaded per tile and side,
//! and the per-tile joins (STT or INLJ, clipped or not) run on a scoped
//! worker pool with dynamic tile scheduling. Duplicate pairs from
//! spanning objects are eliminated with the reference-point rule (see
//! [`crate::partition`]), so the merged [`JoinResult`] reports **exactly**
//! the global pair count of a sequential join — verified against
//! `brute_force_pairs` and sequential `stt`/`inlj` in the tests.
//!
//! I/O counters are summed over tiles. They are comparable across runs of
//! the same plan (the paper's join I/O metric per tile), but not directly
//! to a single global-tree join: per-tile trees are smaller and shallower.

use cbb_core::ClipConfig;
use cbb_geom::Rect;
use cbb_joins::{inlj_filtered, reference_point, stt_filtered, JoinResult};
use cbb_rtree::{ClippedRTree, DataId, RTree, TreeConfig};

use crate::partition::UniformGrid;
use crate::pool::fold_dynamic;

/// Which per-tile join strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Synchronised tree traversal: both tile sides are indexed.
    Stt,
    /// Index nested loops: the right tile side is indexed, the left tile
    /// side streamed as probes.
    Inlj,
}

/// A complete partitioned-join plan: partitioning, per-tile index and
/// clipping configuration, strategy, and parallelism.
#[derive(Clone, Copy, Debug)]
pub struct JoinPlan<const D: usize> {
    /// Spatial partitioning of the workload.
    pub grid: UniformGrid<D>,
    /// Template for every per-tile tree (world bounds are taken from the
    /// template as-is; leave `world` unset to derive them per tile).
    pub tree: TreeConfig<D>,
    /// Clip-point parameters for the per-tile trees.
    pub clip: ClipConfig,
    /// Run Algorithm 2 dominance pruning inside each tile join.
    pub use_clips: bool,
    /// Per-tile strategy.
    pub algo: JoinAlgo,
    /// Worker threads (clamped to the number of non-empty tiles).
    pub workers: usize,
}

impl<const D: usize> JoinPlan<D> {
    /// A plan joining with STT over `grid` using `workers` threads,
    /// paper-default clipping, and the given tree template.
    pub fn new(
        grid: UniformGrid<D>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        JoinPlan {
            grid,
            tree,
            clip,
            use_clips: true,
            algo: JoinAlgo::Stt,
            workers,
        }
    }

    /// Switch the per-tile strategy.
    pub fn with_algo(mut self, algo: JoinAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Enable/disable clip-point pruning (the tile trees are built
    /// without clip tables when disabled, so the baseline pays no
    /// Algorithm 1 cost either).
    pub fn with_clips(mut self, use_clips: bool) -> Self {
        self.use_clips = use_clips;
        self
    }
}

/// Bulk-load one side of a tile: `ids` index into `objects` and are kept
/// as global [`DataId`]s so cross-tile dedup reasons about global pairs.
fn build_tile_tree<const D: usize>(
    objects: &[Rect<D>],
    ids: &[u32],
    tree: TreeConfig<D>,
    clip: ClipConfig,
    use_clips: bool,
) -> ClippedRTree<D> {
    let items: Vec<(Rect<D>, DataId)> = ids
        .iter()
        .map(|&i| (objects[i as usize], DataId(i)))
        .collect();
    let base = RTree::bulk_load(tree, &items);
    if use_clips {
        ClippedRTree::from_tree(base, clip)
    } else {
        ClippedRTree::unclipped(base)
    }
}

/// Run the partitioned parallel join of `left ⋈ right` under `plan`.
///
/// Returns the merged counters; `pairs` equals the sequential
/// `stt`/`inlj` (and brute-force) pair count exactly.
pub fn partitioned_join<const D: usize>(
    plan: &JoinPlan<D>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    let left_assign = plan.grid.assign(left);
    let right_assign = plan.grid.assign(right);
    // Only tiles where both sides are populated can produce pairs.
    let tiles: Vec<usize> = (0..plan.grid.tile_count())
        .filter(|&t| !left_assign[t].is_empty() && !right_assign[t].is_empty())
        .collect();

    let parts = fold_dynamic(
        plan.workers,
        tiles.len(),
        JoinResult::default,
        |i, acc: &mut JoinResult| {
            let t = tiles[i];
            *acc += join_tile(plan, t, left, &left_assign[t], right, &right_assign[t]);
        },
    );
    parts.into_iter().sum()
}

/// Join one tile: build both side trees and run the planned strategy with
/// the reference-point ownership filter.
fn join_tile<const D: usize>(
    plan: &JoinPlan<D>,
    tile: usize,
    left: &[Rect<D>],
    left_ids: &[u32],
    right: &[Rect<D>],
    right_ids: &[u32],
) -> JoinResult {
    let rtree = build_tile_tree(right, right_ids, plan.tree, plan.clip, plan.use_clips);
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = build_tile_tree(left, left_ids, plan.tree, plan.clip, plan.use_clips);
            stt_filtered(&ltree, &rtree, plan.use_clips, |a, b| {
                plan.grid.owns(tile, &reference_point(a, b))
            })
        }
        JoinAlgo::Inlj => {
            let probes: Vec<Rect<D>> = left_ids.iter().map(|&i| left[i as usize]).collect();
            inlj_filtered(&probes, &rtree, plan.use_clips, |probe, id| {
                plan.grid
                    .owns(tile, &reference_point(probe, &right[id.0 as usize]))
            })
        }
    }
}

/// Sequential baseline with the same per-tile index configuration: one
/// global tree per side, one thread, no partitioning. Used by benches and
/// tests as the ground truth the partitioned join must reproduce.
pub fn sequential_join<const D: usize>(
    plan: &JoinPlan<D>,
    left: &[Rect<D>],
    right: &[Rect<D>],
) -> JoinResult {
    let all_left: Vec<u32> = (0..left.len() as u32).collect();
    let all_right: Vec<u32> = (0..right.len() as u32).collect();
    let rtree = build_tile_tree(right, &all_right, plan.tree, plan.clip, plan.use_clips);
    match plan.algo {
        JoinAlgo::Stt => {
            let ltree = build_tile_tree(left, &all_left, plan.tree, plan.clip, plan.use_clips);
            cbb_joins::stt(&ltree, &rtree, plan.use_clips)
        }
        JoinAlgo::Inlj => cbb_joins::inlj(left, &rtree, plan.use_clips),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::ClipMethod;
    use cbb_geom::{Point, SplitMix64};
    use cbb_joins::brute_force_pairs;
    use cbb_rtree::Variant;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64, max_side: f64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 480.0);
                let y = rng.gen_range(0.0, 480.0);
                let w = rng.gen_range(0.5, max_side);
                let h = rng.gen_range(0.5, max_side);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    fn plan2(per_dim: usize, workers: usize) -> JoinPlan<2> {
        JoinPlan::new(
            UniformGrid::new(r2(0.0, 0.0, 500.0, 500.0), per_dim),
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
            workers,
        )
    }

    #[test]
    fn matches_brute_force_for_both_algos() {
        let a = boxes(250, 1, 20.0);
        let b = boxes(300, 2, 20.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for workers in [1, 4] {
                let plan = plan2(4, workers).with_algo(algo);
                assert_eq!(
                    partitioned_join(&plan, &a, &b).pairs,
                    expected,
                    "{algo:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn wide_spanning_objects_do_not_double_count() {
        // Sides up to 150 over 125-wide tiles: most objects span tiles.
        let a = boxes(120, 3, 150.0);
        let b = boxes(140, 4, 150.0);
        let expected = brute_force_pairs(&a, &b);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = plan2(4, 3).with_algo(algo);
            assert_eq!(partitioned_join(&plan, &a, &b).pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn unclipped_plan_matches_too() {
        let a = boxes(200, 5, 25.0);
        let b = boxes(200, 6, 25.0);
        let expected = brute_force_pairs(&a, &b);
        let plan = plan2(3, 2).with_clips(false);
        let res = partitioned_join(&plan, &a, &b);
        assert_eq!(res.pairs, expected);
        assert_eq!(res.clip_prunes, 0, "no clips, no prunes");
    }

    #[test]
    fn empty_inputs() {
        let a = boxes(50, 7, 20.0);
        let plan = plan2(4, 2);
        assert_eq!(partitioned_join(&plan, &a, &[]).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &a).pairs, 0);
        assert_eq!(partitioned_join(&plan, &[], &[]), JoinResult::default());
    }

    #[test]
    fn sequential_baseline_agrees() {
        let a = boxes(180, 8, 30.0);
        let b = boxes(220, 9, 30.0);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            let plan = plan2(4, 4).with_algo(algo);
            assert_eq!(
                sequential_join(&plan, &a, &b).pairs,
                partitioned_join(&plan, &a, &b).pairs,
                "{algo:?}"
            );
        }
    }
}
