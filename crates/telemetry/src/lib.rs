//! # cbb-telemetry — observability for the clipped-bbox stack
//!
//! The paper's evaluation methodology is counter-driven (node accesses,
//! clip prunes, false hits), and the rest of the workspace pins
//! correctness to those counters. This crate gives them a uniform home
//! and a time dimension:
//!
//! * [`Registry`] — named, labelled **counters**, **gauges**, and
//!   log₂-bucket **histograms** behind pre-resolved atomic handles.
//!   Registration takes a lock once; recording is a single relaxed
//!   `fetch_add` with no allocation.
//! * [`Span`] / [`PhaseTimer`] — per-request **phase tracing**
//!   (queue-wait → coalesce → lock-acquire → execute → respond, plus
//!   engine sub-phases), a fixed array of nanosecond accumulators
//!   carried alongside each request.
//! * [`SlowQueryRing`] — bounded **top-K slowest requests**, each with
//!   its phase breakdown and work counters.
//! * Exposition — [`Registry::snapshot`] yields a
//!   [`TelemetrySnapshot`] renderable as Prometheus-style text
//!   ([`TelemetrySnapshot::render_text`]) or JSON
//!   ([`TelemetrySnapshot::to_json`]).
//!
//! Everything is **no-op capable**: a [`TelemetryConfig::disabled`]
//! registry hands out handles that record nothing, so instrumented code
//! runs unchanged (and measurably unslowed — see the `obs_scale` bench)
//! with zero samples retained.
//!
//! This crate is a leaf: it depends on nothing in the workspace, and
//! `serve`/`engine`/`bench` depend on it.

mod hist;
mod registry;
mod slow;
mod span;

pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{
    Counter, FamilySnapshot, FloatGauge, Gauge, MetricKind, Registry, SeriesSnapshot, SeriesValue,
    TelemetrySnapshot,
};
pub use slow::{SlowQuery, SlowQueryRing};
pub use span::{Phase, PhaseTimer, Span};

/// How much telemetry a service should collect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether the registry records at all. When `false` every handle
    /// is a no-op and scrapes are empty.
    pub enabled: bool,
    /// Slow-query ring capacity (top-K by service time). `0` disables
    /// the ring independently of `enabled`.
    pub slow_query_capacity: usize,
}

impl Default for TelemetryConfig {
    /// Enabled, retaining the 16 slowest requests.
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            slow_query_capacity: 16,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry fully off: no samples recorded, empty scrapes, inert
    /// slow ring.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            slow_query_capacity: 0,
        }
    }

    /// Build the registry this configuration calls for.
    pub fn build_registry(&self) -> Registry {
        if self.enabled {
            Registry::new()
        } else {
            Registry::disabled()
        }
    }

    /// Build the slow-query ring this configuration calls for (inert
    /// when disabled).
    pub fn build_slow_ring(&self) -> SlowQueryRing {
        if self.enabled {
            SlowQueryRing::new(self.slow_query_capacity)
        } else {
            SlowQueryRing::new(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_matching_registry() {
        assert!(TelemetryConfig::default().build_registry().is_enabled());
        assert!(!TelemetryConfig::disabled().build_registry().is_enabled());
        assert_eq!(TelemetryConfig::disabled().build_slow_ring().capacity(), 0);
        assert_eq!(TelemetryConfig::default().build_slow_ring().capacity(), 16);
    }
}
