//! Fixed-bucket log₂-scale histograms.
//!
//! The record path is allocation-free and lock-free: one
//! `leading_zeros` to pick the bucket, then three relaxed `fetch_add`s
//! (bucket, count, sum). Bucket boundaries are powers of two, so the
//! same type serves nanosecond latencies (65 buckets cover 1 ns to
//! ~584 years) and tile occupancy counts without configuration — the
//! price is that quantiles are bucket-resolution approximations (an
//! answer is exact up to one power of two), which is the standard
//! monitoring trade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: bucket `0` holds the value `0`, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value falls into (`0` for `0`, else `64 - clz(v)`).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The shared atomic cells behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A handle onto one histogram series. Cloning shares the cells; a
/// disabled handle ([`Histogram::noop`]) records nothing. Obtain
/// registered handles from [`crate::Registry::histogram`]; a
/// [`Histogram::standalone`] works without any registry (the type the
/// bench bins and occupancy reports aggregate through, so service and
/// bench quantiles agree by construction).
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disabled handle: every record is a no-op, the snapshot is
    /// empty.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// An enabled handle not attached to any registry.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.observe(v);
        }
    }

    /// Record a duration as integer nanoseconds (saturating at
    /// `u64::MAX` — ~584 years).
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        if self.0.is_some() {
            self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::default(),
        }
    }
}

/// A point-in-time copy of one histogram's cells, with quantile /
/// mean accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q` in `[0, 1]`), as the inclusive upper bound
    /// of the bucket holding the rank — an overestimate by at most one
    /// power of two. `0` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The histogram's true max caps the open-ended estimate
                // of the top occupied bucket.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean recorded value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs for every
    /// occupied bucket — the Prometheus `_bucket{le=...}` series (the
    /// implicit `+Inf` bucket is the total [`Self::count`]).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 5, 100, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::standalone();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // Upper bucket bounds: within one power of two of the truth.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!((991..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(s.quantile(1.0), 1000, "p100 is capped at the true max");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_noop() {
        let s = Histogram::standalone().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative().is_empty());
        let noop = Histogram::noop();
        noop.observe(7);
        assert_eq!(noop.snapshot().count, 0);
    }

    #[test]
    fn cumulative_is_monotone_and_totals() {
        let h = Histogram::standalone();
        for v in [0u64, 1, 1, 3, 900] {
            h.observe(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, s.count);
    }

    #[test]
    fn concurrent_observations_are_exact() {
        let h = Histogram::standalone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for v in 0..5_000u64 {
                        h.observe(v % 17);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.sum, 4 * (0..5_000u64).map(|v| v % 17).sum::<u64>());
    }
}
