//! Bounded slow-query ring: keeps the top-K completed requests by
//! service time, each with its phase breakdown and work counters.
//!
//! The hot path pays one relaxed atomic load when a request is *not*
//! slow enough to enter (the common case): `min_ns` caches the
//! current admission threshold, so the mutex is only taken when the
//! ring is not yet full or the candidate actually beats the slowest
//! retained entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::Span;

/// One retained slow request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// Request kind (e.g. `"range"`, `"join"`).
    pub kind: &'static str,
    /// Dataset name, when the request targeted one.
    pub dataset: Option<String>,
    /// End-to-end service time in nanoseconds.
    pub total_ns: u64,
    /// Per-phase nanoseconds.
    pub span: Span,
    /// Work counters attributed to the request (e.g. the six
    /// `AccessStats` fields, result counts).
    pub counters: Vec<(&'static str, u64)>,
}

/// Top-K by [`SlowQuery::total_ns`], capacity fixed at construction.
/// Capacity `0` disables the ring entirely (no lock, no atomics).
pub struct SlowQueryRing {
    capacity: usize,
    /// Admission threshold: the smallest `total_ns` currently retained
    /// once the ring is full, else `0`. Advisory (relaxed) — the mutex
    /// re-checks.
    min_ns: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowQueryRing {
    /// A ring retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SlowQueryRing {
            capacity,
            min_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a completed request. Returns `true` if it was retained.
    pub fn offer(&self, entry: SlowQuery) -> bool {
        if self.capacity == 0 {
            return false;
        }
        // Fast path: ring full and this request is no slower than the
        // slowest retained one.
        if entry.total_ns < self.min_ns.load(Ordering::Relaxed) {
            return false;
        }
        let mut entries = self.entries.lock().expect("slow ring poisoned");
        if entries.len() == self.capacity {
            // Re-check under the lock; evict the current minimum.
            let (min_idx, min_ns) = entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.total_ns))
                .min_by_key(|&(_, ns)| ns)
                .expect("ring full implies non-empty");
            if entry.total_ns <= min_ns {
                return false;
            }
            entries[min_idx] = entry;
        } else {
            entries.push(entry);
        }
        if entries.len() == self.capacity {
            let new_min = entries
                .iter()
                .map(|e| e.total_ns)
                .min()
                .expect("ring full implies non-empty");
            self.min_ns.store(new_min, Ordering::Relaxed);
        }
        true
    }

    /// Retained entries, slowest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        let mut out = self.entries.lock().expect("slow ring poisoned").clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        out
    }

    /// Drop every retained entry and reset the admission threshold.
    pub fn clear(&self) {
        self.entries.lock().expect("slow ring poisoned").clear();
        self.min_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn q(total_ns: u64) -> SlowQuery {
        let mut span = Span::new();
        span.record(Phase::Execute, total_ns);
        SlowQuery {
            kind: "range",
            dataset: Some("d".to_string()),
            total_ns,
            span,
            counters: vec![("results", 1)],
        }
    }

    #[test]
    fn keeps_top_k_slowest() {
        let ring = SlowQueryRing::new(3);
        for ns in [5, 1, 9, 3, 7, 2] {
            ring.offer(q(ns));
        }
        let kept: Vec<u64> = ring.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![9, 7, 5]);
    }

    #[test]
    fn fast_path_rejects_below_threshold() {
        let ring = SlowQueryRing::new(2);
        assert!(ring.offer(q(10)));
        assert!(ring.offer(q(20)));
        assert!(!ring.offer(q(5)), "slower than every retained entry");
        assert!(ring.offer(q(15)), "beats the current minimum");
        let kept: Vec<u64> = ring.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![20, 15]);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let ring = SlowQueryRing::new(0);
        assert!(!ring.offer(q(1_000_000)));
        assert!(ring.entries().is_empty());
    }

    #[test]
    fn entries_carry_breakdown_and_counters() {
        let ring = SlowQueryRing::new(1);
        ring.offer(q(42));
        let entries = ring.entries();
        assert_eq!(entries[0].span.breakdown(), vec![("execute", 42)]);
        assert_eq!(entries[0].counters, vec![("results", 1)]);
    }

    #[test]
    fn concurrent_offers_respect_capacity() {
        let ring = SlowQueryRing::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        ring.offer(q(t * 10_000 + i));
                    }
                });
            }
        });
        let entries = ring.entries();
        assert_eq!(entries.len(), 8);
        // The 8 slowest overall are the tail of thread 3's range.
        assert!(entries.iter().all(|e| e.total_ns >= 30_492));
    }

    #[test]
    fn clear_resets() {
        let ring = SlowQueryRing::new(1);
        ring.offer(q(100));
        ring.clear();
        assert!(ring.entries().is_empty());
        assert!(ring.offer(q(1)), "threshold reset after clear");
    }
}
