//! Per-request phase tracing.
//!
//! A [`Span`] is a fixed array of nanosecond accumulators, one per
//! [`Phase`] — no allocation, no clock reads of its own. The serve
//! layer stamps phases as a request moves queue-wait → batch-coalesce →
//! lock-acquire → execute → respond; engine sub-phases (forest build
//! vs. cache hit, join probing) land in the same span. Finished spans
//! feed the per-phase histograms and the slow-query ring.

use std::time::Instant;

/// A lifecycle phase of a served request. The first five are the
/// serve-layer pipeline in order; `ForestBuild`/`Probe` are engine
/// sub-phases that overlap `Execute`; `Scatter`/`Gather` are router
/// sub-phases of a sharded service that overlap the whole per-shard
/// pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Enqueued until its batch opened (first request popped).
    QueueWait,
    /// Batch open until this request was picked up by the dispatcher.
    Coalesce,
    /// Waiting on the dataset's read/write lock.
    LockAcquire,
    /// Running the query / applying the write.
    Execute,
    /// Delay from end of batch execution until this request's
    /// completion handle is fulfilled (recorded just before the
    /// fulfilment, so counters are exact the moment a waiter wakes).
    Respond,
    /// Engine sub-phase: building a missing [`TileForest`] on a cache
    /// miss (zero on a cache hit).
    ///
    /// [`TileForest`]: https://docs.rs/cbb-engine
    ForestBuild,
    /// Engine sub-phase: probing tile trees (range / kNN / join work).
    Probe,
    /// Router sub-phase: splitting a request across shards and pushing
    /// the per-shard copies (zero on an unsharded service). Overlaps
    /// the per-shard pipeline phases, so excluded from
    /// [`Span::total_ns`].
    Scatter,
    /// Router sub-phase: waiting on per-shard completions and merging
    /// their responses (zero on an unsharded service). Excluded from
    /// [`Span::total_ns`] like `Scatter`.
    Gather,
}

impl Phase {
    /// Every phase, in pipeline order. Order matches declaration order
    /// — `phase as usize` indexes per-phase arrays built from `ALL`.
    pub const ALL: [Phase; 9] = [
        Phase::QueueWait,
        Phase::Coalesce,
        Phase::LockAcquire,
        Phase::Execute,
        Phase::Respond,
        Phase::ForestBuild,
        Phase::Probe,
        Phase::Scatter,
        Phase::Gather,
    ];

    /// Stable snake_case name (used as the `phase` label value).
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Coalesce => "coalesce",
            Phase::LockAcquire => "lock_acquire",
            Phase::Execute => "execute",
            Phase::Respond => "respond",
            Phase::ForestBuild => "forest_build",
            Phase::Probe => "probe",
            Phase::Scatter => "scatter",
            Phase::Gather => "gather",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated nanoseconds per phase for one request. Phases may be
/// recorded multiple times (e.g. a join probing several tiles);
/// durations add.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    ns: [u64; Phase::ALL.len()],
}

impl Span {
    /// An empty span.
    pub fn new() -> Self {
        Span::default()
    }

    /// Add `ns` nanoseconds to `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] = self.ns[phase.index()].saturating_add(ns);
    }

    /// Add a duration to `phase`.
    #[inline]
    pub fn record_duration(&mut self, phase: Phase, d: std::time::Duration) {
        self.record(phase, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Nanoseconds accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total nanoseconds across the *pipeline* phases (queue-wait
    /// through respond). Engine sub-phases overlap `Execute` and are
    /// excluded to avoid double counting.
    pub fn total_ns(&self) -> u64 {
        [
            Phase::QueueWait,
            Phase::Coalesce,
            Phase::LockAcquire,
            Phase::Execute,
            Phase::Respond,
        ]
        .iter()
        .map(|p| self.get(*p))
        .fold(0u64, u64::saturating_add)
    }

    /// `(phase name, ns)` for every non-zero phase, in pipeline order.
    pub fn breakdown(&self) -> Vec<(&'static str, u64)> {
        Phase::ALL
            .iter()
            .filter(|p| self.get(**p) > 0)
            .map(|p| (p.name(), self.get(*p)))
            .collect()
    }

    /// Fold another span into this one (used when one request spans
    /// several execution units).
    pub fn absorb(&mut self, other: &Span) {
        for p in Phase::ALL {
            self.record(p, other.get(p));
        }
    }
}

/// Measures one phase from construction to [`PhaseTimer::stop`],
/// recording into a [`Span`]. Cheap enough to use inline in the
/// dispatcher loop; one `Instant::now` at each end.
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

impl PhaseTimer {
    /// Start timing `phase` now.
    pub fn start(phase: Phase) -> Self {
        PhaseTimer {
            phase,
            start: Instant::now(),
        }
    }

    /// Stop and record the elapsed time into `span`, returning the
    /// elapsed nanoseconds.
    pub fn stop(self, span: &mut Span) -> u64 {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        span.record(self.phase, ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_break_down() {
        let mut span = Span::new();
        span.record(Phase::QueueWait, 100);
        span.record(Phase::Execute, 40);
        span.record(Phase::Execute, 2);
        span.record(Phase::Probe, 30);
        assert_eq!(span.get(Phase::Execute), 42);
        assert_eq!(span.total_ns(), 142, "sub-phases excluded from total");
        assert_eq!(
            span.breakdown(),
            vec![("queue_wait", 100), ("execute", 42), ("probe", 30)]
        );
    }

    #[test]
    fn absorb_adds_phasewise() {
        let mut a = Span::new();
        a.record(Phase::LockAcquire, 5);
        let mut b = Span::new();
        b.record(Phase::LockAcquire, 7);
        b.record(Phase::Respond, 1);
        a.absorb(&b);
        assert_eq!(a.get(Phase::LockAcquire), 12);
        assert_eq!(a.get(Phase::Respond), 1);
    }

    #[test]
    fn saturation_not_overflow() {
        let mut span = Span::new();
        span.record(Phase::Execute, u64::MAX);
        span.record(Phase::Execute, 10);
        assert_eq!(span.get(Phase::Execute), u64::MAX);
        span.record(Phase::QueueWait, u64::MAX);
        assert_eq!(span.total_ns(), u64::MAX);
    }

    #[test]
    fn timer_records_something() {
        let mut span = Span::new();
        let t = PhaseTimer::start(Phase::Respond);
        std::hint::black_box(0u64);
        let ns = t.stop(&mut span);
        assert_eq!(span.get(Phase::Respond), ns);
    }
}
