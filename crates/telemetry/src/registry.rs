//! The metrics registry: named, labelled series behind pre-resolved
//! atomic handles.
//!
//! Registration (`counter` / `gauge` / `float_gauge` / `histogram`)
//! takes the registry's lock once and hands back a handle owning an
//! `Arc` to the series' atomic cell — the hot path never sees the lock
//! again; recording is a single relaxed atomic RMW. Registering the
//! same `(name, labels)` twice returns a handle onto the *same* cell,
//! which is what lets report snapshots be views over the registry
//! instead of parallel counters.
//!
//! A disabled registry ([`Registry::disabled`]) hands out no-op handles
//! and exposes nothing — instrumented code runs unchanged with zero
//! recorded samples.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::{Histogram, HistogramCore, HistogramSnapshot};

/// What a metric family measures — maps onto the Prometheus exposition
/// `# TYPE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down (integer or float).
    Gauge,
    /// A log₂-bucketed sample distribution.
    Histogram,
}

impl MetricKind {
    /// The exposition-format type name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle. Cloning shares the cell; a default /
/// [`Counter::noop`] handle records nothing and reads `0`.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disabled handle.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (`0` for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    /// Overwrite the value — only for **view sync** of a counter whose
    /// source of truth lives elsewhere (e.g. a cache's own build
    /// counter mirrored into the registry at scrape time). Never mix
    /// with [`Self::add`] on the same series.
    pub fn store(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Subtract `n` — only for unwinding an optimistic pre-count on a
    /// failure path (count-before-push admission patterns). A counter
    /// must never *trend* downward.
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// An integer gauge handle (up/down/set/max).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A disabled handle.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to `v` if larger (running maximum).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (`0` for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A float gauge handle (`f64` stored as bits; set/get only — floats
/// don't accumulate atomically, so this is for sampled values like an
/// imbalance ratio).
#[derive(Clone, Default)]
pub struct FloatGauge(Option<Arc<AtomicU64>>);

impl FloatGauge {
    /// A disabled handle.
    pub fn noop() -> Self {
        FloatGauge(None)
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (`0.0` for a disabled handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    FloatGauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

struct Series {
    labels: Vec<(String, String)>,
    cell: Cell,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

#[derive(Default)]
struct Inner {
    families: Vec<Family>,
    by_name: HashMap<String, usize>,
}

/// The metrics registry. Share it behind an `Arc`; all methods take
/// `&self`.
pub struct Registry {
    /// `None` when disabled — registration returns no-op handles and
    /// the expositions are empty.
    inner: Option<RwLock<Inner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(RwLock::new(Inner::default())),
        }
    }

    /// A disabled registry: every registration returns a no-op handle,
    /// nothing is recorded, the expositions are empty.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl Fn() -> Cell,
        extract: impl Fn(&Cell) -> Option<T>,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.write().expect("registry poisoned");
        let idx = match inner.by_name.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = inner.families.len();
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                inner.by_name.insert(name.to_string(), idx);
                idx
            }
        };
        let family = &mut inner.families[idx];
        assert_eq!(
            family.kind, kind,
            "metric {name:?} re-registered as a different kind"
        );
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            let handle = extract(&series.cell).expect("kind checked above");
            return Some(handle);
        }
        let cell = make();
        let handle = extract(&cell).expect("freshly made cell matches its kind");
        family.series.push(Series { labels, cell });
        Some(handle)
    }

    /// Register (or re-resolve) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.register(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Cell::Counter(Arc::new(AtomicU64::new(0))),
            |cell| match cell {
                Cell::Counter(c) => Some(c.clone()),
                _ => None,
            },
        ))
    }

    /// Register (or re-resolve) an integer gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.register(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Cell::Gauge(Arc::new(AtomicI64::new(0))),
            |cell| match cell {
                Cell::Gauge(c) => Some(c.clone()),
                _ => None,
            },
        ))
    }

    /// Register (or re-resolve) a float gauge series (exposed as a
    /// gauge).
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        FloatGauge(self.register(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Cell::FloatGauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            |cell| match cell {
                Cell::FloatGauge(c) => Some(c.clone()),
                _ => None,
            },
        ))
    }

    /// Register (or re-resolve) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram(self.register(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Cell::Histogram(Arc::new(HistogramCore::new())),
            |cell| match cell {
                Cell::Histogram(c) => Some(c.clone()),
                _ => None,
            },
        ))
    }

    /// A point-in-time copy of every family and series, in registration
    /// order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = self.inner.as_ref() else {
            return TelemetrySnapshot::default();
        };
        let inner = inner.read().expect("registry poisoned");
        TelemetrySnapshot {
            families: inner
                .families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|s| SeriesSnapshot {
                            labels: s.labels.clone(),
                            value: match &s.cell {
                                Cell::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                                Cell::Gauge(c) => SeriesValue::Gauge(c.load(Ordering::Relaxed)),
                                Cell::FloatGauge(c) => {
                                    SeriesValue::Float(f64::from_bits(c.load(Ordering::Relaxed)))
                                }
                                Cell::Histogram(c) => {
                                    SeriesValue::Histogram(Box::new(c.snapshot()))
                                }
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Render the Prometheus-style text exposition (`# HELP` / `# TYPE`
    /// per family, one sample line per series; histograms expand into
    /// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Every metric family, in registration order.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family (a name, its kind, and its labelled series).
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// The metric name (stable API — the golden scrape test pins it).
    pub name: String,
    /// One-line meaning.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The labelled series, in registration order.
    pub series: Vec<SeriesSnapshot>,
}

/// One series: its label pairs and current value.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// `(key, value)` label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SeriesValue,
}

/// A snapshotted series value.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Integer gauge value.
    Gauge(i64),
    /// Float gauge value.
    Float(f64),
    /// Histogram cells (boxed: the fixed bucket array is ~0.5 KiB).
    Histogram(Box<HistogramSnapshot>),
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

impl TelemetrySnapshot {
    /// Total samples recorded across every series (counter values,
    /// absolute gauge values, histogram counts) — the disabled-mode
    /// test asserts this is zero.
    pub fn total_recorded(&self) -> u64 {
        self.families
            .iter()
            .flat_map(|f| &f.series)
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v,
                SeriesValue::Gauge(v) => v.unsigned_abs(),
                SeriesValue::Float(v) => v.abs() as u64,
                SeriesValue::Histogram(h) => h.count,
            })
            .sum()
    }

    /// The value of a counter series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series_value(name, labels)? {
            SeriesValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of an integer gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.series_value(name, labels)? {
            SeriesValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The cells of a histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.series_value(name, labels)? {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The raw value of a series, if present.
    pub fn series_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        let family = self.families.iter().find(|f| f.name == name)?;
        let series = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (wk, wv))| k == wk && v == wv)
        })?;
        Some(&series.value)
    }

    /// Render the Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind.name()));
            for series in &family.series {
                let labels = label_block(&series.labels);
                match &series.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&format!("{}{labels} {v}\n", family.name));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&format!("{}{labels} {v}\n", family.name));
                    }
                    SeriesValue::Float(v) => {
                        out.push_str(&format!("{}{labels} {v}\n", family.name));
                    }
                    SeriesValue::Histogram(h) => {
                        for (le, cum) in h.cumulative() {
                            let mut with_le = series.labels.clone();
                            with_le.push(("le".to_string(), le.to_string()));
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                family.name,
                                label_block(&with_le)
                            ));
                        }
                        let mut inf = series.labels.clone();
                        inf.push(("le".to_string(), "+Inf".to_string()));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            label_block(&inf),
                            h.count
                        ));
                        out.push_str(&format!("{}_sum{labels} {}\n", family.name, h.sum));
                        out.push_str(&format!("{}_count{labels} {}\n", family.name, h.count));
                    }
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON document (hand-rolled — the
    /// workspace has no serde): an array of families, each with its
    /// series; histograms carry count/sum/max plus quantile estimates.
    pub fn to_json(&self) -> String {
        let mut families = Vec::new();
        for family in &self.families {
            let mut series = Vec::new();
            for s in &family.series {
                let labels: Vec<String> = s
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
                    .collect();
                let value = match &s.value {
                    SeriesValue::Counter(v) => format!("\"value\": {v}"),
                    SeriesValue::Gauge(v) => format!("\"value\": {v}"),
                    SeriesValue::Float(v) => {
                        if v.is_finite() {
                            format!("\"value\": {v}")
                        } else {
                            "\"value\": null".to_string()
                        }
                    }
                    SeriesValue::Histogram(h) => format!(
                        "\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}",
                        h.count,
                        h.sum,
                        h.max,
                        h.quantile(0.5),
                        h.quantile(0.99)
                    ),
                };
                series.push(format!(
                    "{{\"labels\": {{{}}}, {value}}}",
                    labels.join(", ")
                ));
            }
            families.push(format!(
                "{{\"name\": {}, \"kind\": {}, \"help\": {}, \"series\": [{}]}}",
                json_str(&family.name),
                json_str(family.kind.name()),
                json_str(&family.help),
                series.join(", ")
            ));
        }
        format!("{{\"metrics\": [\n  {}\n]}}\n", families.join(",\n  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_on_reregistration() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests", &[("kind", "range")]);
        let b = reg.counter("requests_total", "requests", &[("kind", "range")]);
        let other = reg.counter("requests_total", "requests", &[("kind", "knn")]);
        a.add(3);
        b.inc();
        other.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
        assert_eq!(other.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("requests_total", &[("kind", "range")]),
            Some(4)
        );
        assert_eq!(snap.counter("requests_total", &[("kind", "knn")]), Some(1));
        assert_eq!(snap.counter("requests_total", &[("kind", "nope")]), None);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        let depth = reg.gauge("queue_depth", "queued requests", &[]);
        depth.add(5);
        depth.dec();
        assert_eq!(depth.get(), 4);
        depth.set_max(2);
        assert_eq!(depth.get(), 4, "set_max never lowers");
        depth.set_max(9);
        assert_eq!(depth.get(), 9);
        let ratio = reg.float_gauge("imbalance", "max/mean", &[("dataset", "a")]);
        ratio.set(3.5);
        assert_eq!(ratio.get(), 3.5);
    }

    #[test]
    fn disabled_registry_records_and_exposes_nothing() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x_total", "x", &[]);
        let g = reg.gauge("g", "g", &[]);
        let h = reg.histogram("h", "h", &[]);
        c.add(10);
        g.set(5);
        h.observe(3);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        let snap = reg.snapshot();
        assert!(snap.families.is_empty());
        assert_eq!(snap.total_recorded(), 0);
        assert!(reg.render_text().is_empty());
    }

    #[test]
    fn text_exposition_shape() {
        let reg = Registry::new();
        reg.counter(
            "cbb_requests_total",
            "Requests admitted.",
            &[("kind", "range")],
        )
        .add(2);
        reg.gauge("cbb_queue_depth", "Requests queued.", &[]).set(1);
        let h = reg.histogram("cbb_latency_ns", "Latency.", &[]);
        h.observe(1);
        h.observe(3);
        let text = reg.render_text();
        assert!(text.contains("# TYPE cbb_requests_total counter"));
        assert!(text.contains("cbb_requests_total{kind=\"range\"} 2"));
        assert!(text.contains("# TYPE cbb_queue_depth gauge"));
        assert!(text.contains("cbb_queue_depth 1"));
        assert!(text.contains("# TYPE cbb_latency_ns histogram"));
        assert!(text.contains("cbb_latency_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("cbb_latency_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("cbb_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cbb_latency_ns_sum 4"));
        assert!(text.contains("cbb_latency_ns_count 2"));
    }

    #[test]
    fn json_exposition_parses_shapes() {
        let reg = Registry::new();
        reg.counter("a_total", "a \"quoted\" help", &[("k", "v")])
            .inc();
        reg.histogram("h_ns", "h", &[]).observe(100);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"name\": \"a_total\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"p99\": 100"), "quantile capped at true max");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("m", "m", &[]);
        reg.gauge("m", "m", &[]);
    }
}
