//! Clipping configuration (paper §V-A defaults).

/// Which clip-point generator to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClipMethod {
    /// Object-situated clip points: skylines of child corners (CBB_SKY,
    /// paper §III-B). Cheaper to build, prunes less.
    Skyline,
    /// Point-spliced clip points: stairlines over the skylines (CBB_STA,
    /// paper §III-C). `O(|S|³)` construction per corner, ~2× the pruning.
    Stairline,
}

impl ClipMethod {
    /// Label used in experiment output ("CSKY" / "CSTA" in the paper).
    pub fn label(self) -> &'static str {
        match self {
            ClipMethod::Skyline => "CSKY",
            ClipMethod::Stairline => "CSTA",
        }
    }
}

/// Parameters of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClipConfig {
    /// Maximum clip points kept per node (`k`). Paper default: `2^{d+1}`,
    /// i.e. up to two per corner.
    pub k: usize,
    /// Minimum clipped volume as a fraction of the node volume (`τ`).
    /// Paper default: 2.5 %. Candidates scoring `≤ τ·vol(N)` are dropped.
    pub tau: f64,
    /// Generator choice.
    pub method: ClipMethod,
}

impl ClipConfig {
    /// The paper's experimental defaults for dimensionality `D`:
    /// `k = 2^{D+1}`, `τ = 2.5 %`.
    pub fn paper_default<const D: usize>(method: ClipMethod) -> Self {
        ClipConfig {
            k: 1 << (D + 1),
            tau: 0.025,
            method,
        }
    }

    /// Override `k` (used by the Figure 10 sweep).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Override `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c2 = ClipConfig::paper_default::<2>(ClipMethod::Skyline);
        assert_eq!(c2.k, 8);
        assert_eq!(c2.tau, 0.025);
        let c3 = ClipConfig::paper_default::<3>(ClipMethod::Stairline);
        assert_eq!(c3.k, 16);
    }

    #[test]
    fn builders() {
        let c = ClipConfig::paper_default::<2>(ClipMethod::Skyline)
            .with_k(3)
            .with_tau(0.1);
        assert_eq!(c.k, 3);
        assert_eq!(c.tau, 0.1);
    }

    #[test]
    fn labels() {
        assert_eq!(ClipMethod::Skyline.label(), "CSKY");
        assert_eq!(ClipMethod::Stairline.label(), "CSTA");
    }
}
