//! Clip-point scoring (paper §IV-B, Figure 5).
//!
//! Exact union volume of `k` clip regions needs inclusion–exclusion
//! (exponential); the paper instead scores candidates per corner under
//! three assumptions: corners are independent, the largest-volume candidate
//! is always selected, and pairwise overlap among the rest is (mostly)
//! covered by that largest candidate. Concretely, for corner `b` with
//! candidates `p_1 … p_n` and top candidate `p* = argmax Vol(p_i)`:
//!
//! ```text
//! score(p*)  = Vol(p*)
//! score(p_i) = Vol(p_i) − Vol(p_i ∩ p*)          (i ≠ *)
//! ```
//!
//! where `p_i ∩ p*`'s region is itself a corner region anchored at the
//! splice of the two points *toward* the corner (mask `b`).

use cbb_geom::{Coord, CornerMask, Point, Rect};

use crate::clip::ClipPoint;
use crate::stairline::splice;

/// Volume of the intersection of the two corner regions anchored at `p` and
/// `q` toward corner `b` of `mbb`: the region of `b(p, q)` (Definition 6
/// with mask `b`, i.e. the splice *toward* the corner).
pub fn overlap_with<const D: usize>(
    mbb: &Rect<D>,
    p: &Point<D>,
    q: &Point<D>,
    b: CornerMask,
) -> Coord {
    let toward = splice(p, q, b);
    Rect::from_corners(toward, mbb.corner(b)).volume()
}

/// Score the candidate clip points of one corner per Figure 5 and return
/// them as [`ClipPoint`]s (unsorted, unfiltered).
pub fn score_corner<const D: usize>(
    mbb: &Rect<D>,
    candidates: &[Point<D>],
    b: CornerMask,
) -> Vec<ClipPoint<D>> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let corner = mbb.corner(b);
    let vols: Vec<Coord> = candidates
        .iter()
        .map(|p| Rect::from_corners(*p, corner).volume())
        .collect();
    // Index of the top candidate (assumption 2).
    let top = vols
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite volumes"))
        .map(|(i, _)| i)
        .expect("non-empty");

    candidates
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let score = if i == top {
                vols[i]
            } else {
                vols[i] - overlap_with(mbb, p, &candidates[top], b)
            };
            ClipPoint {
                mask: b,
                coord: *p,
                score,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const B00: CornerMask = CornerMask::new(0b00);

    fn mbb() -> Rect<2> {
        Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0]))
    }

    #[test]
    fn single_candidate_gets_full_volume() {
        let scored = score_corner(&mbb(), &[Point([4.0, 5.0])], B00);
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].score, 20.0);
        assert_eq!(scored[0].mask, B00);
    }

    #[test]
    fn figure5_shape_scoring() {
        // Figure 5 layout (corner R^00): p2 clips the most; p1 and p3 sit
        // on either side. score(p2) = area(p2); the others lose their
        // overlap with p2.
        let p1 = Point([2.0, 8.0]);
        let p2 = Point([5.0, 5.0]);
        let p3 = Point([8.0, 2.0]);
        let scored = score_corner(&mbb(), &[p1, p2, p3], B00);
        let get = |p: Point<2>| scored.iter().find(|c| c.coord == p).unwrap().score;
        assert_eq!(get(p2), 25.0);
        // area(p1) = 16, overlap with p2 = MBB((2,5) → corner) = 10.
        assert_eq!(get(p1), 16.0 - 10.0);
        // Symmetric for p3.
        assert_eq!(get(p3), 16.0 - 10.0);
    }

    #[test]
    fn combined_score_is_exact_for_opposite_side_points() {
        // The paper notes the approximation is exact when the smaller
        // candidates lie on opposite sides of the top one: union equals the
        // sum of scores.
        let p1 = Point([2.0, 8.0]);
        let p2 = Point([5.0, 5.0]);
        let p3 = Point([8.0, 2.0]);
        let frame = mbb();
        let scored = score_corner(&frame, &[p1, p2, p3], B00);
        let total: f64 = scored.iter().map(|c| c.score).sum();
        let regions: Vec<Rect<2>> = scored.iter().map(|c| c.region(&frame)).collect();
        let exact = cbb_geom::union_volume_exact(&frame, &regions);
        assert!(
            (total - exact).abs() < 1e-9,
            "approx {total} vs exact {exact}"
        );
    }

    #[test]
    fn nested_candidate_scores_zero() {
        // A candidate fully inside the top candidate's region contributes
        // nothing.
        let top = Point([6.0, 6.0]);
        let nested = Point([3.0, 3.0]);
        let scored = score_corner(&mbb(), &[top, nested], B00);
        let get = |p: Point<2>| scored.iter().find(|c| c.coord == p).unwrap().score;
        assert_eq!(get(top), 36.0);
        assert_eq!(get(nested), 0.0);
    }

    #[test]
    fn overlap_matches_exact_region_intersection() {
        let frame = mbb();
        for b in CornerMask::all::<2>() {
            let p = Point([3.0, 7.0]);
            let q = Point([6.0, 4.0]);
            let rp = Rect::from_corners(p, frame.corner(b));
            let rq = Rect::from_corners(q, frame.corner(b));
            let expected = rp.overlap_volume(&rq);
            assert!(
                (overlap_with(&frame, &p, &q, b) - expected).abs() < 1e-12,
                "mask {b:?}"
            );
        }
    }

    #[test]
    fn empty_candidates() {
        assert!(score_corner::<2>(&mbb(), &[], B00).is_empty());
    }
}
