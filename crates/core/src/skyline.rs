//! Oriented skylines (paper §III-B, Definitions 4–5).
//!
//! For corner `b` of an MBB over objects `O`, the valid object-situated clip
//! points are exactly the oriented skyline `S_b({o_i^b})` of the objects'
//! nearest corners: a corner is a clip point iff no other object corner is
//! at least as close to `R^b` in every dimension.

use cbb_geom::{dominates, CornerMask, Point, Rect};

/// The oriented skyline `S_b(P)`: the subset of `points` not dominated by
/// any other point with respect to `b` (Definition 5).
///
/// Duplicates are collapsed to a single representative (two objects sharing
/// a corner produce one candidate clip point). Output order follows the
/// first occurrence in the input; cost is `O(n²)` — inputs are node fanouts
/// (≲ 130), for which this beats sort-based schemes and generalises to any
/// dimensionality.
pub fn oriented_skyline<const D: usize>(points: &[Point<D>], b: CornerMask) -> Vec<Point<D>> {
    let mut out: Vec<Point<D>> = Vec::new();
    'cand: for (i, p) in points.iter().enumerate() {
        // Skip exact duplicates of an earlier point.
        if points[..i].contains(p) {
            continue;
        }
        for q in points {
            if dominates(q, p, b) {
                continue 'cand;
            }
        }
        out.push(*p);
    }
    out
}

/// Convenience: extract corner `b` of every child rectangle and return the
/// oriented skyline of those corners — the CBB_SKY candidate set for one
/// corner of a node (Algorithm 1, line 3).
pub fn skyline_of_children<const D: usize>(children: &[Rect<D>], b: CornerMask) -> Vec<Point<D>> {
    let corners: Vec<Point<D>> = children.iter().map(|r| r.corner(b)).collect();
    oriented_skyline(&corners, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const B00: CornerMask = CornerMask::new(0b00);
    const B11: CornerMask = CornerMask::new(0b11);

    /// The five objects of the paper's running example (Figure 2),
    /// hand-placed to reproduce its qualitative geometry inside
    /// MBB ⟨(0,0), (100,100)⟩:
    ///   o1 top-left tall, o2 left-middle, o3 bottom-middle wide,
    ///   o4 bottom-right (lowest), o5 right of o4 and slightly higher.
    /// This placement reproduces the paper's stated facts: the skyline for
    /// corner 00 is {o1, o2, o3, o4} (o5 dominated by o3 and o4); o3^11 is
    /// not a clip point; the splice c = 00(o1^11, o4^11) = (18, 40) is the
    /// best clip point toward corner 11.
    pub(crate) fn figure2_objects() -> Vec<Rect<2>> {
        vec![
            Rect::new(Point([0.0, 55.0]), Point([18.0, 100.0])), // o1
            Rect::new(Point([8.0, 30.0]), Point([28.0, 38.0])),  // o2
            Rect::new(Point([25.0, 8.0]), Point([60.0, 22.0])),  // o3
            Rect::new(Point([62.0, 0.0]), Point([88.0, 40.0])),  // o4
            Rect::new(Point([80.0, 12.0]), Point([100.0, 35.0])), // o5
        ]
    }

    #[test]
    fn paper_figure2_skyline_for_corner_00() {
        // Paper: "Considering corner b = 00 … we obtain a skyline of
        // {o1^00, o2^00, o3^00, o4^00}. Point o5^00 is dominated by both
        // o3^00 and o4^00."
        let objects = figure2_objects();
        let sky = skyline_of_children(&objects, B00);
        let corners: Vec<Point<2>> = objects.iter().map(|o| o.corner(B00)).collect();
        assert!(sky.contains(&corners[0]), "o1^00 on skyline");
        assert!(sky.contains(&corners[1]), "o2^00 on skyline");
        assert!(sky.contains(&corners[2]), "o3^00 on skyline");
        assert!(sky.contains(&corners[3]), "o4^00 on skyline");
        assert!(!sky.contains(&corners[4]), "o5^00 dominated");
        assert_eq!(sky.len(), 4);
    }

    #[test]
    fn paper_figure2_o3_not_clip_point_for_corner_11() {
        // Paper: "⟨o3^11, R^11⟩ is not a clip point (it would clip away part
        // of o4 and o5)".
        let objects = figure2_objects();
        let sky = skyline_of_children(&objects, B11);
        let o3_corner = objects[2].corner(B11);
        assert!(!sky.contains(&o3_corner));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(oriented_skyline::<2>(&[], B00).is_empty());
        let p = Point([1.0, 2.0]);
        assert_eq!(oriented_skyline(&[p], B00), vec![p]);
    }

    #[test]
    fn duplicates_collapse() {
        let p = Point([1.0, 2.0]);
        let q = Point([0.5, 3.0]);
        let sky = oriented_skyline(&[p, p, q, q], B00);
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn total_order_keeps_single_point() {
        // Points on a diagonal: toward corner 00 the closest one wins.
        let pts = [Point([3.0, 3.0]), Point([1.0, 1.0]), Point([2.0, 2.0])];
        let sky = oriented_skyline(&pts, B00);
        assert_eq!(sky, vec![Point([1.0, 1.0])]);
        // Toward corner 11 the farthest one wins.
        let sky11 = oriented_skyline(&pts, B11);
        assert_eq!(sky11, vec![Point([3.0, 3.0])]);
    }

    #[test]
    fn anti_chain_is_fully_kept() {
        // A descending diagonal is an anti-chain toward corners 00 and 11,
        // but toward 01/10 it is a chain with a single extreme point.
        let pts = [
            Point([1.0, 4.0]),
            Point([2.0, 3.0]),
            Point([3.0, 2.0]),
            Point([4.0, 1.0]),
        ];
        assert_eq!(oriented_skyline(&pts, B00).len(), 4);
        assert_eq!(oriented_skyline(&pts, B11).len(), 4);
        assert_eq!(
            oriented_skyline(&pts, CornerMask::new(0b01)),
            vec![Point([4.0, 1.0])]
        );
        assert_eq!(
            oriented_skyline(&pts, CornerMask::new(0b10)),
            vec![Point([1.0, 4.0])]
        );
    }

    #[test]
    fn skyline_members_are_mutually_non_dominating() {
        let pts: Vec<Point<2>> = (0..30)
            .map(|i| {
                let x = (i * 7 % 13) as f64;
                let y = (i * 11 % 17) as f64;
                Point([x, y])
            })
            .collect();
        for mask in CornerMask::all::<2>() {
            let sky = oriented_skyline(&pts, mask);
            for a in &sky {
                for b in &sky {
                    assert!(!dominates(a, b, mask), "{a:?} ≺ {b:?} wrt {mask:?}");
                }
            }
            // Every input point is dominated-or-equal by some skyline point.
            for p in &pts {
                assert!(
                    sky.iter().any(|s| s == p || dominates(s, p, mask)),
                    "{p:?} not covered"
                );
            }
        }
    }

    #[test]
    fn three_d_skyline() {
        let b = CornerMask::new(0b000);
        let pts = [
            Point([1.0, 1.0, 1.0]),
            Point([2.0, 2.0, 2.0]), // dominated by the first
            Point([0.0, 3.0, 3.0]), // incomparable
        ];
        let sky = oriented_skyline(&pts, b);
        assert_eq!(sky.len(), 2);
        assert!(sky.contains(&pts[0]));
        assert!(sky.contains(&pts[2]));
    }
}
