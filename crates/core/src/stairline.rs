//! Point-spliced clip points / stairlines (paper §III-C, Definitions 6–7).
//!
//! Splicing two skyline points with the **opposite** mask `∼b` yields a
//! point "between" them that is farther from corner `R^b` in every
//! dimension than either source alone allows — clipping strictly more dead
//! space. Not every splice is valid; validity is checked against the
//! skyline itself (checking skyline points suffices: any object corner in a
//! would-be clipped region is dominated toward `R^b` by a skyline point
//! that is then also inside the region).
//!
//! ## Erratum
//!
//! Algorithm 1 (line 6) prints the validity test as
//! `∀ s_k ∈ P : ∼b(s_i, s_j) ⊀_b s_k`. Under Definition 4
//! (`p ≺_b q ⟺ p ∈ MBB(q, R^b)`), membership of a skyline point `s_k` in
//! the splice's clipped region `MBB(t, R^b)` is `s_k ≺_b t` — the printed
//! direction would accept splices that clip away live objects (see
//! `rejects_splice_covering_skyline_point` below for a counter-example).
//!
//! Moreover the membership must be tested *strictly in every dimension*
//! ([`cbb_geom::dominates_strict_all`]): a proper splice shares a
//! coordinate with each of its source points by construction, so every
//! source weakly dominates it — using weak dominance would reject all
//! proper splices, including the paper's own example point `c` of Fig. 2.
//! A skyline point on the region *boundary* means measure-zero contact
//! between the clipped region and the object, which keeps clipping exact.

use cbb_geom::{dominates_strict_all, CornerMask, Point};

/// The splice point of `p` and `q` with respect to `mask` (Definition 6):
/// per dimension, the max of the two coordinates where `mask` is set, the
/// min where it is clear. (Equivalently: corner `mask` of `MBB({p, q})`.)
pub fn splice<const D: usize>(p: &Point<D>, q: &Point<D>, mask: CornerMask) -> Point<D> {
    let mut out = [0.0; D];
    for i in 0..D {
        out[i] = if mask.bit(i) {
            p[i].max(q[i])
        } else {
            p[i].min(q[i])
        };
    }
    Point(out)
}

/// The oriented stairline of skyline `sky` toward corner `b`
/// (Definition 7): all valid splice points `∼b(s_i, s_j)`.
///
/// The original skyline points are retained as degenerate splices
/// (`∼b(s, s) = s`): with a single skyline point no pair exists, yet the
/// point itself remains a perfectly good clip point, and the paper's claim
/// that stairline clipping is never worse than skyline clipping requires
/// the skyline to stay in the candidate pool.
///
/// Cost is `O(|sky|³)` as in the paper ("an unfortunately-cubic algorithm
/// that is still practically reasonable given the small input sets").
pub fn stairline<const D: usize>(sky: &[Point<D>], b: CornerMask) -> Vec<Point<D>> {
    let inv = b.flipped::<D>();
    let mut out: Vec<Point<D>> = sky.to_vec();
    for i in 0..sky.len() {
        for j in (i + 1)..sky.len() {
            let t = splice(&sky[i], &sky[j], inv);
            // Degenerate splices equal to a source point are already kept.
            if t == sky[i] || t == sky[j] || out.contains(&t) {
                continue;
            }
            // Validity: no skyline point strictly inside MBB(t, R^b).
            if sky.iter().all(|s| !dominates_strict_all(s, &t, b)) {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::oriented_skyline;
    use cbb_geom::Rect;

    const B11: CornerMask = CornerMask::new(0b11);
    const B00: CornerMask = CornerMask::new(0b00);

    #[test]
    fn splice_takes_extremes_per_mask() {
        let p = Point([1.0, 8.0]);
        let q = Point([5.0, 2.0]);
        assert_eq!(splice(&p, &q, CornerMask::new(0b00)), Point([1.0, 2.0]));
        assert_eq!(splice(&p, &q, CornerMask::new(0b11)), Point([5.0, 8.0]));
        assert_eq!(splice(&p, &q, CornerMask::new(0b01)), Point([5.0, 2.0]));
        assert_eq!(splice(&p, &q, CornerMask::new(0b10)), Point([1.0, 8.0]));
    }

    #[test]
    fn splice_is_corner_of_pair_mbb() {
        let p = Point([3.0, 7.0]);
        let q = Point([6.0, 1.0]);
        let mbb = Rect::from_corners(p, q);
        for mask in CornerMask::all::<2>() {
            assert_eq!(splice(&p, &q, mask), mbb.corner(mask));
        }
    }

    #[test]
    fn paper_figure2_splice_c() {
        // Paper: "c is equal to 00(o1^11, o4^11), i.e., takes the smallest
        // x and y values from its source points."
        let o1_11 = Point([18.0, 100.0]);
        let o4_11 = Point([88.0, 40.0]);
        let c = splice(&o1_11, &o4_11, B00);
        assert_eq!(c, Point([18.0, 40.0]));
    }

    #[test]
    fn stairline_of_staircase_generates_inner_corners() {
        // Three skyline points toward corner 11 of a [0,10]² MBB.
        let sky = [Point([2.0, 9.0]), Point([5.0, 6.0]), Point([8.0, 2.0])];
        let st = stairline(&sky, B11);
        // Retains the three originals.
        for s in &sky {
            assert!(st.contains(s));
        }
        // Adjacent pairs splice to valid inner corners.
        assert!(st.contains(&Point([2.0, 6.0])));
        assert!(st.contains(&Point([5.0, 2.0])));
        // The far pair splices to (2,2), which would clip away (5,6):
        // (5,6) ≺_11 (2,2) holds (closer to corner in both dims) → invalid.
        assert!(!st.contains(&Point([2.0, 2.0])));
        assert_eq!(st.len(), 5);
    }

    #[test]
    fn rejects_splice_covering_skyline_point() {
        // The counter-example showing Algorithm 1's printed test direction
        // is inverted: skyline {(10,2), (2,10), (5,5)} toward corner 11.
        // Splice of the outer pair is (2,2) whose clipped region
        // MBB((2,2), R^11) contains (5,5) — an object corner — so it MUST
        // be rejected. (Under the printed test, (2,2) dominates no skyline
        // point toward b=11, so it would be wrongly accepted.)
        let sky = [Point([10.0, 2.0]), Point([2.0, 10.0]), Point([5.0, 5.0])];
        let st = stairline(&sky, B11);
        assert!(!st.contains(&Point([2.0, 2.0])));
        // The splices with (5,5) are valid.
        assert!(st.contains(&Point([5.0, 2.0])));
        assert!(st.contains(&Point([2.0, 5.0])));
    }

    #[test]
    fn singleton_skyline_is_preserved() {
        let sky = [Point([4.0, 4.0])];
        let st = stairline(&sky, B11);
        assert_eq!(st, vec![Point([4.0, 4.0])]);
    }

    #[test]
    fn stairline_superset_of_skyline() {
        let pts: Vec<Point<2>> = (0..20)
            .map(|i| Point([(i * 13 % 19) as f64, (i * 7 % 23) as f64]))
            .collect();
        for mask in CornerMask::all::<2>() {
            let sky = oriented_skyline(&pts, mask);
            let st = stairline(&sky, mask);
            for s in &sky {
                assert!(st.contains(s));
            }
            assert!(st.len() >= sky.len());
        }
    }

    #[test]
    fn stairline_points_clip_at_least_their_sources() {
        // Every non-degenerate stairline point's region contains the
        // regions of... not quite — but its volume toward the corner is at
        // least the max of what a *pairwise* splice's sources clip jointly
        // in the shared sub-box. Check the weaker paper claim: each splice
        // point clips at least as much as either source point alone.
        let mbb: Rect<2> = Rect::new(Point([0.0, 0.0]), Point([12.0, 12.0]));
        let sky = [Point([2.0, 9.0]), Point([5.0, 6.0]), Point([8.0, 2.0])];
        let st = stairline(&sky, B11);
        for t in st.iter().filter(|t| !sky.contains(t)) {
            let vol_t = Rect::from_corners(*t, mbb.corner(B11)).volume();
            // Find the source pair.
            let mut max_src: f64 = 0.0;
            for s in &sky {
                let v = Rect::from_corners(*s, mbb.corner(B11)).volume();
                if (0..2).all(|i| t[i] <= s[i]) {
                    max_src = max_src.max(v);
                }
            }
            assert!(vol_t >= max_src, "{t:?} clips less than a source");
        }
    }

    #[test]
    fn three_d_stairline() {
        let b = CornerMask::new(0b111);
        // Two incomparable corners toward (10,10,10).
        let sky = [Point([9.0, 2.0, 5.0]), Point([2.0, 9.0, 5.0])];
        let st = stairline(&sky, b);
        assert!(st.contains(&Point([2.0, 2.0, 5.0])));
        assert_eq!(st.len(), 3);
    }
}
