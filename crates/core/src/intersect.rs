//! Algorithm 2: the clipping-enabled intersection test (§IV-C) and the
//! insertion validity test (§IV-D).
//!
//! ```text
//! Intersection Test (R, C, Q, selector) → bool
//!   1: if Q ∩ R = ∅ return FALSE
//!   2: for each c ∈ C:
//!   3:   if Q^{selector ⊕ c.mask} ≺_{c.mask} c.coord return FALSE
//!   4: return TRUE
//! ```
//!
//! With `selector = 2^d − 1` (queries) the tested corner is `Q^{∼mask}` —
//! the *least competitive* query corner; if even that corner lies in the
//! clipped region, all of `Q ∩ R` does, so the CBB and `Q` are disjoint.
//! With `selector = 0` (insertions) the tested corner is `Q^{mask}` — the
//! *most competitive* corner of the inserted object; if it reaches into a
//! clipped region, that clip point is invalidated.
//!
//! ## Why all-strict dominance
//!
//! Pruning uses the *all-strict* dominance `≺≺` (strictly closer to the
//! corner in **every** dimension), matching the all-strict validity rule
//! used during construction. A clip region may legitimately share a
//! boundary plane with an object (the skyline point that generated it lies
//! on that plane), so a query whose corner merely *reaches* the plane —
//! equality in that dimension — can still touch the object under
//! closed-rectangle semantics and must not be pruned. When `Q^{∼b} ≺≺_b c`
//! holds, every point of `Q ∩ R` is strictly inside the clipped region in
//! every dimension, and validity guarantees objects touch that region at
//! most on its boundary planes — so no object can be reached: pruning is
//! exact, even for degenerate (point / segment) objects lying exactly on a
//! clip boundary.
//!
//! The insertion test (`selector = 0`) is conservative in the safe
//! direction: any object overlapping a clipped region with positive
//! measure — or any degenerate object strictly inside one — has its
//! nearest corner all-strictly dominating the clip point and is caught;
//! harmless measure-zero boundary contact is tolerated without re-clipping.

use cbb_geom::{dominates_strict_all, CornerMask, Rect};

use crate::clip::ClipPoint;

/// Algorithm 2, verbatim: returns `false` when `q` provably does not
/// intersect any live content of the CBB `(mbb, clips)`.
pub fn cbb_intersection_test<const D: usize>(
    mbb: &Rect<D>,
    clips: &[ClipPoint<D>],
    q: &Rect<D>,
    selector: CornerMask,
) -> bool {
    if !mbb.intersects(q) {
        return false;
    }
    for c in clips {
        let qc = q.corner(selector.xor(c.mask));
        if dominates_strict_all(&qc, &c.coord, c.mask) {
            return false;
        }
    }
    true
}

/// Query-flavoured test (`selector = 2^d − 1`): does the range query `q`
/// possibly intersect live content of the CBB?
pub fn query_intersects_cbb<const D: usize>(
    mbb: &Rect<D>,
    clips: &[ClipPoint<D>],
    q: &Rect<D>,
) -> bool {
    cbb_intersection_test(mbb, clips, q, CornerMask::max_corner::<D>())
}

/// Insertion-flavoured test (`selector = 0`): `true` when inserting
/// `object` leaves every clip point valid; `false` when the CBB must be
/// recomputed (§IV-D). Inserts propagate up from the leaves, so
/// `object ∩ mbb ≠ ∅` always holds here.
pub fn insertion_keeps_clips_valid<const D: usize>(
    mbb: &Rect<D>,
    clips: &[ClipPoint<D>],
    object: &Rect<D>,
) -> bool {
    cbb_intersection_test(mbb, clips, object, CornerMask::MIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::Point;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn mbb() -> Rect<2> {
        r2(0.0, 0.0, 10.0, 10.0)
    }

    /// Clip away the top-right quarter above (6, 6).
    fn clip_tr() -> ClipPoint<2> {
        ClipPoint::new(CornerMask::new(0b11), Point([6.0, 6.0]))
    }

    #[test]
    fn disjoint_mbb_short_circuits() {
        let q = r2(20.0, 20.0, 30.0, 30.0);
        assert!(!query_intersects_cbb(&mbb(), &[], &q));
        assert!(!query_intersects_cbb(&mbb(), &[clip_tr()], &q));
    }

    #[test]
    fn no_clips_reduces_to_mbb_test() {
        let q = r2(5.0, 5.0, 6.0, 6.0);
        assert!(query_intersects_cbb(&mbb(), &[], &q));
    }

    #[test]
    fn query_fully_inside_clipped_region_is_pruned() {
        let q = r2(7.0, 7.0, 9.0, 9.0);
        assert!(!query_intersects_cbb(&mbb(), &[clip_tr()], &q));
    }

    #[test]
    fn query_overlapping_live_space_is_kept() {
        // Straddles the clip boundary.
        let q = r2(5.0, 5.0, 9.0, 9.0);
        assert!(query_intersects_cbb(&mbb(), &[clip_tr()], &q));
        // Entirely in live space.
        let q2 = r2(1.0, 1.0, 3.0, 3.0);
        assert!(query_intersects_cbb(&mbb(), &[clip_tr()], &q2));
    }

    #[test]
    fn query_extending_beyond_mbb_still_pruned() {
        // Q reaches outside R but Q ∩ R is inside the clipped region.
        let q = r2(7.0, 7.0, 15.0, 15.0);
        assert!(!query_intersects_cbb(&mbb(), &[clip_tr()], &q));
    }

    #[test]
    fn boundary_touching_query_is_not_pruned() {
        // Q's low corner coincides with the clip point: Q may touch the
        // generating object's corner at (6,6) → must not prune.
        let q = r2(6.0, 6.0, 9.0, 9.0);
        assert!(query_intersects_cbb(&mbb(), &[clip_tr()], &q));
    }

    #[test]
    fn paper_figure6_example() {
        // Figure 6a: the bottom node R1 with a clip point toward R^11; the
        // query's 00-corner dominates it → pruned. Figure 6b: top node R2,
        // query corner does not dominate the sole clip point → intersects.
        let r1 = r2(0.0, 0.0, 10.0, 6.0);
        let clip1 = ClipPoint::new(CornerMask::new(0b11), Point([6.0, 3.0]));
        let q = r2(8.0, 4.0, 9.5, 5.5);
        assert!(!query_intersects_cbb(&r1, &[clip1], &q));

        let r2_ = r2(5.0, 4.0, 10.0, 10.0);
        let clip2 = ClipPoint::new(CornerMask::new(0b01), Point([9.0, 5.0]));
        assert!(query_intersects_cbb(&r2_, &[clip2], &q));
    }

    #[test]
    fn multiple_clips_any_prunes() {
        let clips = [
            ClipPoint::new(CornerMask::new(0b11), Point([6.0, 6.0])),
            ClipPoint::new(CornerMask::new(0b00), Point([3.0, 3.0])),
        ];
        assert!(!query_intersects_cbb(
            &mbb(),
            &clips,
            &r2(0.5, 0.5, 2.0, 2.0)
        ));
        assert!(!query_intersects_cbb(
            &mbb(),
            &clips,
            &r2(7.0, 7.0, 8.0, 8.0)
        ));
        assert!(query_intersects_cbb(
            &mbb(),
            &clips,
            &r2(4.0, 4.0, 5.0, 5.0)
        ));
    }

    #[test]
    fn insertion_validity_detection() {
        let clips = [clip_tr()];
        // Object inside live space: clips stay valid.
        assert!(insertion_keeps_clips_valid(
            &mbb(),
            &clips,
            &r2(1.0, 1.0, 4.0, 4.0)
        ));
        // Object reaching into the clipped region: invalid.
        assert!(!insertion_keeps_clips_valid(
            &mbb(),
            &clips,
            &r2(5.0, 5.0, 7.0, 7.0)
        ));
        // Object entirely inside the clipped region: invalid.
        assert!(!insertion_keeps_clips_valid(
            &mbb(),
            &clips,
            &r2(8.0, 8.0, 9.0, 9.0)
        ));
        // Object touching the clip boundary only: still valid
        // (measure-zero contact).
        assert!(insertion_keeps_clips_valid(
            &mbb(),
            &clips,
            &r2(1.0, 1.0, 6.0, 6.0)
        ));
    }

    #[test]
    fn paper_figure7b_insertion_invalidates() {
        // Figure 7b: re-inserting o3 invalidates the post-deletion clip
        // point c′ because o3's 00-corner dominates c′ w.r.t. R^00... the
        // figure's clip is toward corner 00 of the bottom node; modelled
        // here with the region below-left of c′.
        let node = r2(0.0, 0.0, 100.0, 48.0);
        let c_prime = ClipPoint::new(CornerMask::new(0b00), Point([55.0, 20.0]));
        let o3 = r2(25.0, 0.0, 60.0, 22.0);
        assert!(!insertion_keeps_clips_valid(&node, &[c_prime], &o3));
    }

    #[test]
    fn three_d_query_pruning() {
        let mbb: Rect<3> = Rect::new(Point([0.0; 3]), Point([10.0; 3]));
        let clip = ClipPoint::new(CornerMask::new(0b111), Point([5.0, 5.0, 5.0]));
        let inside = Rect::new(Point([6.0; 3]), Point([8.0; 3]));
        let straddling = Rect::new(Point([4.0; 3]), Point([8.0; 3]));
        assert!(!query_intersects_cbb(&mbb, &[clip], &inside));
        assert!(query_intersects_cbb(&mbb, &[clip], &straddling));
    }
}
