//! # cbb-core — clipped bounding boxes
//!
//! The paper's primary contribution (Šidlauskas et al., ICDE 2018, §III–IV):
//!
//! * [`ClipPoint`] — a point + corner mask declaring a rectangular region of
//!   an MBB to be dead space (Definition 2);
//! * [`skyline`] — oriented skylines of object corners (Definition 5), the
//!   object-situated clip-point candidates of CBB_SKY (§III-B);
//! * [`mod@stairline`] — splice points between skyline points (Definitions 6–7),
//!   the more aggressive CBB_STA candidates (§III-C);
//! * [`clipper`] — Algorithm 1: scoring (Fig. 5 union approximation),
//!   τ-thresholding and top-k selection of clip points per node;
//! * [`intersect`] — Algorithm 2: the clipping-enabled intersection test and
//!   the insertion-validity variant (§IV-C, §IV-D);
//! * [`Cbb`] — an MBB paired with its selected clip points (Definition 3).
//!
//! The crate is index-agnostic: it operates on plain rectangles so that any
//! R-tree variant (or other MBB-based structure) can plug it in, exactly as
//! the paper advertises.

pub mod cbb;
pub mod clip;
pub mod clipper;
pub mod config;
pub mod intersect;
pub mod score;
pub mod skyline;
pub mod stairline;

pub use cbb::Cbb;
pub use clip::{clipped_min_dist_sq, ClipPoint};
pub use clipper::clip_node;
pub use config::{ClipConfig, ClipMethod};
pub use intersect::{cbb_intersection_test, insertion_keeps_clips_valid, query_intersects_cbb};
pub use skyline::oriented_skyline;
pub use stairline::{splice, stairline};
