//! The clipped bounding box (paper Definition 3).

use cbb_geom::{Coord, Rect};

use crate::clip::ClipPoint;
use crate::clipper::clip_node;
use crate::config::ClipConfig;
use crate::intersect::{insertion_keeps_clips_valid, query_intersects_cbb};

/// A clipped bounding box `⟨R, P⟩`: an MBB plus its selected clip points.
///
/// This is the standalone, index-agnostic form of the concept; the R-tree
/// integration stores clip points in an auxiliary side table instead (see
/// `cbb-rtree::clipped`) to keep the base tree layout untouched, as the
/// paper prescribes (§IV-A).
#[derive(Clone, Debug, PartialEq)]
pub struct Cbb<const D: usize> {
    /// The minimum bounding box `R`.
    pub mbb: Rect<D>,
    /// Selected clip points, sorted by descending score.
    pub clips: Vec<ClipPoint<D>>,
}

impl<const D: usize> Cbb<D> {
    /// Build the CBB of a set of object/child rectangles under `cfg`.
    /// Returns `None` for an empty set (no MBB exists).
    pub fn build(children: &[Rect<D>], cfg: &ClipConfig) -> Option<Self> {
        let mbb = Rect::mbb_of(children)?;
        let clips = clip_node(&mbb, children, cfg);
        Some(Cbb { mbb, clips })
    }

    /// A CBB with no clip points (degenerates to the plain MBB).
    pub fn unclipped(mbb: Rect<D>) -> Self {
        Cbb {
            mbb,
            clips: Vec::new(),
        }
    }

    /// Query-time intersection test (Algorithm 2 with query selector).
    pub fn intersects_query(&self, q: &Rect<D>) -> bool {
        query_intersects_cbb(&self.mbb, &self.clips, q)
    }

    /// Whether inserting `object` keeps all clip points valid (§IV-D).
    pub fn insertion_keeps_valid(&self, object: &Rect<D>) -> bool {
        insertion_keeps_clips_valid(&self.mbb, &self.clips, object)
    }

    /// Exact total volume clipped away — `Vol_R(P)`, the union of all clip
    /// regions (never double-counted; the paper's quality measure).
    pub fn clipped_volume(&self) -> Coord {
        let regions: Vec<Rect<D>> = self.clips.iter().map(|c| c.region(&self.mbb)).collect();
        cbb_geom::union_volume_exact(&self.mbb, &regions)
    }

    /// Fraction of the MBB volume clipped away, in `[0, 1]`.
    pub fn clipped_fraction(&self) -> Coord {
        let v = self.mbb.volume();
        if v <= 0.0 {
            0.0
        } else {
            (self.clipped_volume() / v).clamp(0.0, 1.0)
        }
    }

    /// Number of stored clip points.
    pub fn clip_count(&self) -> usize {
        self.clips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClipMethod;
    use cbb_geom::Point;

    fn objects() -> Vec<Rect<2>> {
        vec![
            Rect::new(Point([0.0, 55.0]), Point([18.0, 100.0])),
            Rect::new(Point([8.0, 30.0]), Point([28.0, 38.0])),
            Rect::new(Point([25.0, 8.0]), Point([60.0, 22.0])),
            Rect::new(Point([62.0, 0.0]), Point([88.0, 40.0])),
            Rect::new(Point([80.0, 12.0]), Point([100.0, 35.0])),
        ]
    }

    #[test]
    fn build_computes_mbb_and_clips() {
        let cfg = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let cbb = Cbb::build(&objects(), &cfg).unwrap();
        assert_eq!(cbb.mbb, Rect::new(Point([0.0, 0.0]), Point([100.0, 100.0])));
        assert!(cbb.clip_count() > 0);
        assert!(Cbb::<2>::build(&[], &cfg).is_none());
    }

    #[test]
    fn clipped_volume_union_not_sum() {
        let cfg = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let cbb = Cbb::build(&objects(), &cfg).unwrap();
        let union = cbb.clipped_volume();
        let sum: f64 = cbb.clips.iter().map(|c| c.clipped_volume(&cbb.mbb)).sum();
        assert!(union <= sum + 1e-9);
        assert!(union > 0.0);
        let frac = cbb.clipped_fraction();
        assert!(frac > 0.0 && frac <= 1.0);
    }

    #[test]
    fn clipping_never_loses_query_results() {
        // Exhaustive grid of queries: whenever a clipped CBB prunes, the
        // query must intersect no object.
        let objs = objects();
        let cfg = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let cbb = Cbb::build(&objs, &cfg).unwrap();
        let mut checked = 0;
        for x in 0..20 {
            for y in 0..20 {
                for s in [2.0, 7.0, 15.0] {
                    let lo = Point([x as f64 * 5.0, y as f64 * 5.0]);
                    let q = Rect::new(lo, Point([lo[0] + s, lo[1] + s]));
                    if !cbb.intersects_query(&q) {
                        checked += 1;
                        for o in &objs {
                            assert!(
                                !q.intersects(o),
                                "pruned query {q:?} intersects object {o:?}"
                            );
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "no query was ever pruned — test is vacuous");
    }

    #[test]
    fn unclipped_behaves_like_mbb() {
        let mbb = Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0]));
        let cbb = Cbb::unclipped(mbb);
        assert_eq!(cbb.clipped_volume(), 0.0);
        assert_eq!(cbb.clipped_fraction(), 0.0);
        let q = Rect::new(Point([9.0, 9.0]), Point([11.0, 11.0]));
        assert!(cbb.intersects_query(&q));
    }

    #[test]
    fn deletion_lazy_insertion_eager_scenario() {
        // §IV-D, Figure 7: delete o3, keep the old clips (still valid);
        // re-inserting o3 against a freshly-clipped node without o3 must
        // report invalidation.
        let cfg = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let objs = objects();
        let full = Cbb::build(&objs, &cfg).unwrap();

        let without_o3: Vec<Rect<2>> = objs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, r)| *r)
            .collect();

        // Lazy deletion: the full CBB's clips remain valid for the reduced
        // object set (clip regions were dead before, deletion only adds
        // dead space).
        for c in &full.clips {
            assert!(c.is_valid_for(&full.mbb, &without_o3));
        }

        // Eager insertion: re-clip the reduced set (same MBB — o3 is
        // interior), then o3's insertion must invalidate at least one of
        // the new, tighter clips.
        let reduced = Cbb::build(&without_o3, &cfg).unwrap();
        assert_eq!(reduced.mbb, full.mbb, "o3 is interior; MBB must not change");
        assert!(!reduced.insertion_keeps_valid(&objs[2]));
    }
}
