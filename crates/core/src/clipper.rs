//! Algorithm 1: `Clip(node N, k, τ) → set of clip points C`.

use cbb_geom::Rect;

use crate::clip::ClipPoint;
use crate::config::{ClipConfig, ClipMethod};
use crate::score::score_corner;
use crate::skyline::skyline_of_children;
use crate::stairline::stairline;

/// Compute the clip points of one node.
///
/// `mbb` is the node's bounding box and `children` the MBBs of its entries
/// (child-node MBBs for directory nodes, object MBBs for leaves). Follows
/// Algorithm 1:
///
/// 1. per corner `b`, compute the skyline of child corners (line 3);
/// 2. optionally splice into the stairline (lines 4–8);
/// 3. score candidates with the Figure 5 approximation (line 9);
/// 4. keep candidates scoring above `τ · vol(N)` (lines 10–11);
/// 5. return the `min(k, |L|)` highest-scoring (line 12), sorted by
///    descending score so queries test the biggest region first (§IV-A).
pub fn clip_node<const D: usize>(
    mbb: &Rect<D>,
    children: &[Rect<D>],
    cfg: &ClipConfig,
) -> Vec<ClipPoint<D>> {
    let mut all: Vec<ClipPoint<D>> = Vec::new();
    let threshold = cfg.tau * mbb.volume();

    for b in cbb_geom::CornerMask::all::<D>() {
        let sky = skyline_of_children(children, b);
        let candidates = match cfg.method {
            ClipMethod::Skyline => sky,
            ClipMethod::Stairline => stairline(&sky, b),
        };
        for cp in score_corner(mbb, &candidates, b) {
            if cp.score > threshold {
                all.push(cp);
            }
        }
    }

    // Descending score; ties broken deterministically by mask then coords
    // so repeated builds produce identical trees.
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| a.mask.bits().cmp(&b.mask.bits()))
            .then_with(|| {
                a.coord
                    .coords()
                    .partial_cmp(b.coord.coords())
                    .expect("finite coords")
            })
    });
    all.truncate(cfg.k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::{CornerMask, Point};

    fn figure2() -> (Rect<2>, Vec<Rect<2>>) {
        let objects = vec![
            Rect::new(Point([0.0, 55.0]), Point([18.0, 100.0])), // o1
            Rect::new(Point([8.0, 30.0]), Point([28.0, 38.0])),  // o2
            Rect::new(Point([25.0, 8.0]), Point([60.0, 22.0])),  // o3
            Rect::new(Point([62.0, 0.0]), Point([88.0, 40.0])),  // o4
            Rect::new(Point([80.0, 12.0]), Point([100.0, 35.0])), // o5
        ];
        let mbb = Rect::mbb_of(&objects).unwrap();
        (mbb, objects)
    }

    fn cfg(method: ClipMethod) -> ClipConfig {
        ClipConfig::paper_default::<2>(method)
    }

    #[test]
    fn all_produced_clip_points_are_valid() {
        let (mbb, objects) = figure2();
        for method in [ClipMethod::Skyline, ClipMethod::Stairline] {
            let clips = clip_node(&mbb, &objects, &cfg(method));
            assert!(!clips.is_empty(), "{method:?} found no clips");
            for c in &clips {
                assert!(
                    c.is_valid_for(&mbb, &objects),
                    "{method:?} produced invalid clip {c:?}"
                );
                assert!(mbb.contains_point(&c.coord));
            }
        }
    }

    #[test]
    fn clips_sorted_by_descending_score() {
        let (mbb, objects) = figure2();
        let clips = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline));
        for w in clips.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn respects_k() {
        let (mbb, objects) = figure2();
        for k in 1..=8 {
            let clips = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_k(k));
            assert!(clips.len() <= k);
        }
        // k = 1 keeps the single best clip point.
        let one = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_k(1));
        let many = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_k(8));
        assert_eq!(one[0], many[0]);
    }

    #[test]
    fn tau_filters_small_clips() {
        let (mbb, objects) = figure2();
        // An absurdly high τ keeps nothing.
        let none = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_tau(1.0));
        assert!(none.is_empty());
        // τ = 0 keeps more than τ = 20 %.
        let loose = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_tau(0.0));
        let tight = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline).with_tau(0.2));
        assert!(loose.len() >= tight.len());
        for c in &tight {
            assert!(c.score > 0.2 * mbb.volume());
        }
    }

    #[test]
    fn stairline_clips_at_least_as_much_as_skyline() {
        let (mbb, objects) = figure2();
        let sky = clip_node(&mbb, &objects, &cfg(ClipMethod::Skyline));
        let sta = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline));
        let vol = |clips: &[ClipPoint<2>]| {
            let regions: Vec<Rect<2>> = clips.iter().map(|c| c.region(&mbb)).collect();
            cbb_geom::union_volume_exact(&mbb, &regions)
        };
        assert!(
            vol(&sta) >= vol(&sky) - 1e-9,
            "stairline {} < skyline {}",
            vol(&sta),
            vol(&sky)
        );
    }

    #[test]
    fn paper_figure2_stairline_includes_spliced_c() {
        // The point c = (18, 40) (splice of o1^11 and o4^11) clips the most
        // dead space toward R^11 in the running example; with stairline
        // clipping it must surface as a selected clip point.
        let (mbb, objects) = figure2();
        let clips = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline));
        assert!(
            clips
                .iter()
                .any(|c| c.mask == CornerMask::new(0b11) && c.coord == Point([18.0, 40.0])),
            "expected splice point (18, 40) toward corner 11; got {clips:?}"
        );
    }

    #[test]
    fn single_child_produces_frame_clips() {
        // One child strictly inside the... no: with one child the node MBB
        // equals the child MBB, so every clip region is degenerate and
        // filtered by τ.
        let child = Rect::new(Point([0.0, 0.0]), Point([4.0, 4.0]));
        let clips = clip_node(&child.clone(), &[child], &cfg(ClipMethod::Stairline));
        assert!(clips.is_empty());
    }

    #[test]
    fn degenerate_node_volume_yields_no_clips() {
        // A zero-volume MBB (collinear points) cannot pass `score > τ·0`
        // with positive τ... scores are 0 too; ensure no panic and empty
        // output with the paper τ.
        let a = Rect::point(Point([0.0, 0.0]));
        let b = Rect::point(Point([1.0, 0.0]));
        let mbb = a.union(&b);
        let clips = clip_node(&mbb, &[a, b], &cfg(ClipMethod::Stairline));
        assert!(clips.is_empty());
    }

    #[test]
    fn three_d_clipping_works() {
        let objects = vec![
            Rect::new(Point([0.0, 0.0, 0.0]), Point([2.0, 2.0, 2.0])),
            Rect::new(Point([8.0, 8.0, 8.0]), Point([10.0, 10.0, 10.0])),
        ];
        let mbb = Rect::mbb_of(&objects).unwrap();
        let cfg = ClipConfig::paper_default::<3>(ClipMethod::Stairline);
        let clips = clip_node(&mbb, &objects, &cfg);
        assert!(!clips.is_empty());
        for c in &clips {
            assert!(c.is_valid_for(&mbb, &objects));
        }
        // The two biggest clips should each carve out nearly half the cube:
        // e.g. corner 0b111's region is bounded by the first object's far
        // corner → volume 10³ − ... just check they're substantial.
        assert!(clips[0].score > 0.3 * mbb.volume());
    }

    #[test]
    fn deterministic_output() {
        let (mbb, objects) = figure2();
        let a = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline));
        let b = clip_node(&mbb, &objects, &cfg(ClipMethod::Stairline));
        assert_eq!(a, b);
    }
}
