//! Clip points (paper Definition 2).

use cbb_geom::{Coord, CornerMask, Point, Rect};

/// A clip point `⟨p, b⟩`: together with the MBB corner `R^b` it spans a
/// rectangular region asserted to contain no object (dead space).
///
/// The `score` records the (approximate, Fig. 5) volume this clip point
/// contributes; clip points are stored sorted by descending score so that
/// queries detect non-intersection as early as possible (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClipPoint<const D: usize> {
    /// Corner of the MBB this point clips (`b` in the paper).
    pub mask: CornerMask,
    /// The clip coordinate (`p` in the paper); always inside the MBB.
    pub coord: Point<D>,
    /// Approximate clipped volume used for ordering and τ-thresholding.
    pub score: Coord,
}

impl<const D: usize> ClipPoint<D> {
    /// Construct with a zero score (callers assign scores during selection).
    pub fn new(mask: CornerMask, coord: Point<D>) -> Self {
        ClipPoint {
            mask,
            coord,
            score: 0.0,
        }
    }

    /// The clipped region: the MBB of `{p, R^b}` (dead space by definition).
    pub fn region(&self, mbb: &Rect<D>) -> Rect<D> {
        Rect::from_corners(self.coord, mbb.corner(self.mask))
    }

    /// Volume clipped away from `mbb` by this point alone
    /// (`Vol_R(⟨p, b⟩)` in the paper).
    pub fn clipped_volume(&self, mbb: &Rect<D>) -> Coord {
        self.region(mbb).volume()
    }

    /// Whether this clip point is *valid* for `objects` per Definition 2:
    /// the clipped region intersects no object with positive measure.
    ///
    /// Boundary contact is permitted — the skyline construction produces
    /// clip points lying exactly on object corners, whose regions touch the
    /// generating object on a zero-measure face.
    pub fn is_valid_for(&self, mbb: &Rect<D>, objects: &[Rect<D>]) -> bool {
        let region = self.region(mbb);
        objects.iter().all(|o| region.overlap_volume(o) == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    #[test]
    fn region_spans_point_to_corner() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        let c = ClipPoint::new(CornerMask::new(0b11), Point([6.0, 7.0]));
        assert_eq!(c.region(&mbb), r2(6.0, 7.0, 10.0, 10.0));
        assert_eq!(c.clipped_volume(&mbb), 12.0);

        let c0 = ClipPoint::new(CornerMask::new(0b00), Point([2.0, 3.0]));
        assert_eq!(c0.region(&mbb), r2(0.0, 0.0, 2.0, 3.0));
        assert_eq!(c0.clipped_volume(&mbb), 6.0);
    }

    #[test]
    fn mixed_corner_region() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        // b = 01: max in x, min in y → bottom-right corner (10, 0).
        let c = ClipPoint::new(CornerMask::new(0b01), Point([7.0, 4.0]));
        assert_eq!(c.region(&mbb), r2(7.0, 0.0, 10.0, 4.0));
    }

    #[test]
    fn validity_respects_objects() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        let objects = [r2(0.0, 0.0, 5.0, 5.0), r2(6.0, 6.0, 8.0, 8.0)];
        // Clips empty bottom-right corner: valid.
        let ok = ClipPoint::new(CornerMask::new(0b01), Point([6.0, 5.0]));
        assert!(ok.is_valid_for(&mbb, &objects));
        // Would clip away part of the second object: invalid.
        let bad = ClipPoint::new(CornerMask::new(0b11), Point([7.0, 7.0]));
        assert!(!bad.is_valid_for(&mbb, &objects));
        // Boundary contact with the first object: still valid.
        let touching = ClipPoint::new(CornerMask::new(0b11), Point([5.0, 5.0]));
        assert!(!touching.is_valid_for(&mbb, &objects)); // overlaps object 2
        let objects1 = [r2(0.0, 0.0, 5.0, 5.0)];
        assert!(touching.is_valid_for(&mbb, &objects1));
    }

    #[test]
    fn three_d_region() {
        let mbb: Rect<3> = Rect::new(Point([0.0; 3]), Point([4.0; 3]));
        let c = ClipPoint::new(CornerMask::new(0b111), Point([2.0, 3.0, 1.0]));
        assert_eq!(
            c.region(&mbb),
            Rect::new(Point([2.0, 3.0, 1.0]), Point([4.0; 3]))
        );
        assert_eq!(c.clipped_volume(&mbb), 2.0 * 1.0 * 3.0);
    }
}
