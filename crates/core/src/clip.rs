//! Clip points (paper Definition 2).

use cbb_geom::{Coord, CornerMask, Point, Rect};

/// A clip point `⟨p, b⟩`: together with the MBB corner `R^b` it spans a
/// rectangular region asserted to contain no object (dead space).
///
/// The `score` records the (approximate, Fig. 5) volume this clip point
/// contributes; clip points are stored sorted by descending score so that
/// queries detect non-intersection as early as possible (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClipPoint<const D: usize> {
    /// Corner of the MBB this point clips (`b` in the paper).
    pub mask: CornerMask,
    /// The clip coordinate (`p` in the paper); always inside the MBB.
    pub coord: Point<D>,
    /// Approximate clipped volume used for ordering and τ-thresholding.
    pub score: Coord,
}

impl<const D: usize> ClipPoint<D> {
    /// Construct with a zero score (callers assign scores during selection).
    pub fn new(mask: CornerMask, coord: Point<D>) -> Self {
        ClipPoint {
            mask,
            coord,
            score: 0.0,
        }
    }

    /// The clipped region: the MBB of `{p, R^b}` (dead space by definition).
    pub fn region(&self, mbb: &Rect<D>) -> Rect<D> {
        Rect::from_corners(self.coord, mbb.corner(self.mask))
    }

    /// Volume clipped away from `mbb` by this point alone
    /// (`Vol_R(⟨p, b⟩)` in the paper).
    pub fn clipped_volume(&self, mbb: &Rect<D>) -> Coord {
        self.region(mbb).volume()
    }

    /// Whether this clip point is *valid* for `objects` per Definition 2:
    /// the clipped region intersects no object with positive measure.
    ///
    /// Boundary contact is permitted — the skyline construction produces
    /// clip points lying exactly on object corners, whose regions touch the
    /// generating object on a zero-measure face.
    pub fn is_valid_for(&self, mbb: &Rect<D>, objects: &[Rect<D>]) -> bool {
        let region = self.region(mbb);
        objects.iter().all(|o| region.overlap_volume(o) == 0.0)
    }
}

/// Squared distance from `p[i]` to the closed interval `[lo, hi]`.
fn axis_dist_sq(p: Coord, lo: Coord, hi: Coord) -> Coord {
    let d = if p < lo {
        lo - p
    } else if p > hi {
        p - hi
    } else {
        0.0
    };
    d * d
}

/// Clip-aware MINDIST: a lower bound on the squared distance from `p` to
/// any *live* content of the CBB `(mbb, clips)`, at least as tight as
/// the plain `mbb.min_dist_sq(p)`.
///
/// Validity (the all-strict dominance rule of §IV-C/D, maintained by
/// construction and by the eager insertion test) guarantees no object
/// has a point strictly inside a clip region in *every* dimension. So
/// every point of every object lies, for each clip point `c`, in at
/// least one *complement slab* `B_i(c)` — the MBB with axis `i`
/// restricted to the part not strictly clipped toward the corner.
/// Hence `dist(p, object) ≥ min_i dist(p, B_i(c))` for each `c`, and the
/// max of those bounds (and the plain MINDIST) is still a lower bound.
///
/// The bound tightens exactly in the paper's corner regions: a query
/// point whose nearest MBB point falls inside a clipped corner is pushed
/// out to the live remainder, letting best-first kNN skip the node.
pub fn clipped_min_dist_sq<const D: usize>(
    mbb: &Rect<D>,
    clips: &[ClipPoint<D>],
    p: &Point<D>,
) -> Coord {
    let mut axis = [0.0; D];
    let mut base = 0.0;
    for i in 0..D {
        axis[i] = axis_dist_sq(p[i], mbb.lo[i], mbb.hi[i]);
        base += axis[i];
    }
    let mut best = base;
    for c in clips {
        let mut bound = Coord::INFINITY;
        for i in 0..D {
            // Complement slab along axis i: the corner-side boundary of
            // the clip region is closed (objects may touch it).
            let (lo, hi) = if c.mask.bit(i) {
                (mbb.lo[i], c.coord[i])
            } else {
                (c.coord[i], mbb.hi[i])
            };
            let cand = base - axis[i] + axis_dist_sq(p[i], lo, hi);
            if cand < bound {
                bound = cand;
            }
        }
        if bound > best {
            best = bound;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    #[test]
    fn region_spans_point_to_corner() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        let c = ClipPoint::new(CornerMask::new(0b11), Point([6.0, 7.0]));
        assert_eq!(c.region(&mbb), r2(6.0, 7.0, 10.0, 10.0));
        assert_eq!(c.clipped_volume(&mbb), 12.0);

        let c0 = ClipPoint::new(CornerMask::new(0b00), Point([2.0, 3.0]));
        assert_eq!(c0.region(&mbb), r2(0.0, 0.0, 2.0, 3.0));
        assert_eq!(c0.clipped_volume(&mbb), 6.0);
    }

    #[test]
    fn mixed_corner_region() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        // b = 01: max in x, min in y → bottom-right corner (10, 0).
        let c = ClipPoint::new(CornerMask::new(0b01), Point([7.0, 4.0]));
        assert_eq!(c.region(&mbb), r2(7.0, 0.0, 10.0, 4.0));
    }

    #[test]
    fn validity_respects_objects() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        let objects = [r2(0.0, 0.0, 5.0, 5.0), r2(6.0, 6.0, 8.0, 8.0)];
        // Clips empty bottom-right corner: valid.
        let ok = ClipPoint::new(CornerMask::new(0b01), Point([6.0, 5.0]));
        assert!(ok.is_valid_for(&mbb, &objects));
        // Would clip away part of the second object: invalid.
        let bad = ClipPoint::new(CornerMask::new(0b11), Point([7.0, 7.0]));
        assert!(!bad.is_valid_for(&mbb, &objects));
        // Boundary contact with the first object: still valid.
        let touching = ClipPoint::new(CornerMask::new(0b11), Point([5.0, 5.0]));
        assert!(!touching.is_valid_for(&mbb, &objects)); // overlaps object 2
        let objects1 = [r2(0.0, 0.0, 5.0, 5.0)];
        assert!(touching.is_valid_for(&mbb, &objects1));
    }

    #[test]
    fn clipped_min_dist_matches_plain_without_clips() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        for p in [
            Point([5.0, 5.0]),
            Point([-3.0, 4.0]),
            Point([15.0, 15.0]),
            Point([12.0, -2.0]),
        ] {
            assert_eq!(clipped_min_dist_sq(&mbb, &[], &p), mbb.min_dist_sq(&p));
        }
    }

    #[test]
    fn clipped_min_dist_tightens_corner_probes() {
        let mbb = r2(0.0, 0.0, 10.0, 10.0);
        // Top-right quarter above (6, 6) is dead space.
        let clips = [ClipPoint::new(CornerMask::new(0b11), Point([6.0, 6.0]))];
        // Probe beyond the clipped corner: the plain MINDIST reaches the
        // corner (10, 10); the live region is only reachable at x ≤ 6 or
        // y ≤ 6 → the bound grows.
        let p = Point([14.0, 14.0]);
        let plain = mbb.min_dist_sq(&p); // 4² + 4² = 32
        let tight = clipped_min_dist_sq(&mbb, &clips, &p);
        assert_eq!(plain, 32.0);
        // Best complement slab: x ∈ [0, 6] → (14−6)² + (14−10)² = 80.
        assert_eq!(tight, 80.0);
        // The bound never undercuts the true distance to any valid
        // object (one touching the clip boundary from live space).
        let object = r2(5.0, 0.0, 6.0, 6.0);
        assert!(tight <= object.min_dist_sq(&p));
    }

    #[test]
    fn clipped_min_dist_never_exceeds_live_objects() {
        // Randomised audit: for clip points valid for an object set, the
        // bound lower-bounds the distance to every object.
        let mbb = r2(0.0, 0.0, 100.0, 100.0);
        let objects = [
            r2(0.0, 0.0, 30.0, 40.0),
            r2(60.0, 25.0, 100.0, 45.0),
            r2(10.0, 70.0, 25.0, 100.0),
        ];
        let clips = [
            ClipPoint::new(CornerMask::new(0b11), Point([25.0, 70.0])),
            ClipPoint::new(CornerMask::new(0b01), Point([60.0, 20.0])),
        ];
        for c in &clips {
            assert!(c.is_valid_for(&mbb, &objects));
        }
        let mut s = 0x9E37u64;
        for _ in 0..500 {
            // Cheap LCG probe points, inside and outside the MBB.
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let px = ((s >> 16) % 3000) as f64 / 10.0 - 100.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let py = ((s >> 16) % 3000) as f64 / 10.0 - 100.0;
            let p = Point([px, py]);
            let bound = clipped_min_dist_sq(&mbb, &clips, &p);
            assert!(bound >= mbb.min_dist_sq(&p));
            for o in &objects {
                assert!(
                    bound <= o.min_dist_sq(&p) + 1e-9,
                    "bound {bound} exceeds distance to {o:?} from {p:?}"
                );
            }
        }
    }

    #[test]
    fn three_d_region() {
        let mbb: Rect<3> = Rect::new(Point([0.0; 3]), Point([4.0; 3]));
        let c = ClipPoint::new(CornerMask::new(0b111), Point([2.0, 3.0, 1.0]));
        assert_eq!(
            c.region(&mbb),
            Rect::new(Point([2.0, 3.0, 1.0]), Point([4.0; 3]))
        );
        assert_eq!(c.clipped_volume(&mbb), 2.0 * 1.0 * 3.0);
    }
}
