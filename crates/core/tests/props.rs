//! Property-based tests for the CBB core: the safety invariants the whole
//! paper rests on.

use cbb_core::{clip_node, oriented_skyline, stairline, Cbb, ClipConfig, ClipMethod};
use cbb_geom::{dominates, union_volume_exact, CornerMask, Point, Rect};
use proptest::prelude::*;

/// Random boxes inside [0, 100]².
fn arb_boxes2(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Rect<2>>> {
    prop::collection::vec(
        (0.0f64..90.0, 0.0f64..90.0, 0.1f64..10.0, 0.1f64..10.0)
            .prop_map(|(x, y, w, h)| Rect::new(Point([x, y]), Point([x + w, y + h]))),
        n,
    )
}

/// Random boxes inside [0, 50]³.
fn arb_boxes3(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Rect<3>>> {
    prop::collection::vec(
        (
            0.0f64..45.0,
            0.0f64..45.0,
            0.0f64..45.0,
            0.1f64..5.0,
            0.1f64..5.0,
            0.1f64..5.0,
        )
            .prop_map(|(x, y, z, w, h, d)| {
                Rect::new(Point([x, y, z]), Point([x + w, y + h, z + d]))
            }),
        n,
    )
}

fn arb_method() -> impl Strategy<Value = ClipMethod> {
    prop_oneof![Just(ClipMethod::Skyline), Just(ClipMethod::Stairline)]
}

proptest! {
    /// Every produced clip point clips only dead space (Definition 2).
    #[test]
    fn clips_are_always_valid_2d(objects in arb_boxes2(1..25), method in arb_method()) {
        let cfg = ClipConfig::paper_default::<2>(method);
        let mbb = Rect::mbb_of(&objects).unwrap();
        for c in clip_node(&mbb, &objects, &cfg) {
            prop_assert!(
                c.is_valid_for(&mbb, &objects),
                "invalid clip {c:?} for {} objects", objects.len()
            );
            prop_assert!(mbb.contains_point(&c.coord));
            prop_assert!(c.score >= 0.0);
        }
    }

    #[test]
    fn clips_are_always_valid_3d(objects in arb_boxes3(1..15), method in arb_method()) {
        let cfg = ClipConfig::paper_default::<3>(method);
        let mbb = Rect::mbb_of(&objects).unwrap();
        for c in clip_node(&mbb, &objects, &cfg) {
            prop_assert!(c.is_valid_for(&mbb, &objects));
        }
    }

    /// The union of clip regions never exceeds the node's dead space.
    #[test]
    fn clipped_volume_bounded_by_dead_space(objects in arb_boxes2(1..20), method in arb_method()) {
        let cfg = ClipConfig::paper_default::<2>(method);
        let cbb = Cbb::build(&objects, &cfg).unwrap();
        let object_vol = union_volume_exact(&cbb.mbb, &objects);
        let dead = cbb.mbb.volume() - object_vol;
        prop_assert!(
            cbb.clipped_volume() <= dead + 1e-6,
            "clipped {} > dead space {}", cbb.clipped_volume(), dead
        );
    }

    /// Queries pruned by the CBB test intersect no object — against a brute
    /// force oracle (the paper's correctness requirement).
    #[test]
    fn pruning_never_loses_results(
        objects in arb_boxes2(1..20),
        method in arb_method(),
        queries in prop::collection::vec(
            (0.0f64..95.0, 0.0f64..95.0, 0.1f64..30.0, 0.1f64..30.0),
            1..40
        ),
    ) {
        let cfg = ClipConfig::paper_default::<2>(method);
        let cbb = Cbb::build(&objects, &cfg).unwrap();
        for (x, y, w, h) in queries {
            let q = Rect::new(Point([x, y]), Point([x + w, y + h]));
            if !cbb.intersects_query(&q) {
                for o in &objects {
                    prop_assert!(
                        !q.intersects(o),
                        "pruned query {q:?} touches object {o:?} (clips: {:?})",
                        cbb.clips
                    );
                }
            }
        }
    }

    /// Insertion-validity test: accepting an object implies all clips stay
    /// truly valid for the extended object set.
    #[test]
    fn insertion_validity_is_safe(
        objects in arb_boxes2(2..15),
        new_obj in (0.0f64..90.0, 0.0f64..90.0, 0.1f64..10.0, 0.1f64..10.0),
        method in arb_method(),
    ) {
        let cfg = ClipConfig::paper_default::<2>(method);
        let cbb = Cbb::build(&objects, &cfg).unwrap();
        let o = Rect::new(
            Point([new_obj.0, new_obj.1]),
            Point([new_obj.0 + new_obj.2, new_obj.1 + new_obj.3]),
        );
        // Only meaningful when the object falls inside the node MBB
        // (inserts propagate from the leaves, so this always holds there).
        if cbb.mbb.contains_rect(&o) && cbb.insertion_keeps_valid(&o) {
            let mut extended = objects.clone();
            extended.push(o);
            for c in &cbb.clips {
                prop_assert!(
                    c.is_valid_for(&cbb.mbb, &extended),
                    "clip {c:?} claimed valid but overlaps inserted {o:?}"
                );
            }
        }
    }

    /// Stairline is a superset of the skyline and all members are mutually
    /// consistent clip candidates.
    #[test]
    fn stairline_extends_skyline(points in prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point([x, y])), 1..25
    )) {
        for mask in CornerMask::all::<2>() {
            let sky = oriented_skyline(&points, mask);
            let sta = stairline(&sky, mask);
            for s in &sky {
                prop_assert!(sta.contains(s));
            }
            // No stairline point may be weakly dominated by a skyline point
            // *in the strict-interior sense* — re-check the validity rule.
            for t in &sta {
                for s in &sky {
                    prop_assert!(!cbb_geom::dominates_strict_all(s, t, mask));
                }
            }
        }
    }

    /// Skyline output is exactly the non-dominated subset.
    #[test]
    fn skyline_is_sound_and_complete(points in prop::collection::vec(
        (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point([x, y])), 0..30
    )) {
        for mask in CornerMask::all::<2>() {
            let sky = oriented_skyline(&points, mask);
            for p in &points {
                let dominated = points.iter().any(|q| dominates(q, p, mask));
                prop_assert_eq!(sky.contains(p), !dominated, "point {:?} mask {:?}", p, mask);
            }
        }
    }

    /// Stairline-based CBBs clip at least as much volume as skyline-based
    /// ones under identical k and τ (the paper's headline §III-C claim).
    #[test]
    fn stairline_clips_no_less_than_skyline(objects in arb_boxes2(2..20)) {
        let sky = Cbb::build(&objects, &ClipConfig::paper_default::<2>(ClipMethod::Skyline)).unwrap();
        let sta = Cbb::build(&objects, &ClipConfig::paper_default::<2>(ClipMethod::Stairline)).unwrap();
        prop_assert!(sta.clipped_volume() >= sky.clipped_volume() - 1e-9);
    }
}
