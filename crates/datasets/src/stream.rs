//! Timed query streams: open-loop request workloads with arrival-time
//! skew, for driving a serving layer the way real traffic would.
//!
//! Tzirita Zacharatou et al. (*The Case for Distance-Bounded Spatial
//! Approximations*) argue index quality must be measured under realistic
//! query streams, not isolated batches; a serving layer additionally
//! cares *when* requests arrive, because micro-batching feeds on
//! temporal clustering. The generator models a two-state modulated
//! Poisson process: arrivals alternate between **bursts** (rate ×
//! `burstiness`) and **lulls** (rate ÷ `burstiness`), with geometrically
//! distributed run lengths — `burstiness = 1` degenerates to a plain
//! Poisson stream. Query centres follow the *data* (a random object's
//! centre plus jitter), so the stream hits populated regions the way
//! user traffic does.

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Mean requests per burst/lull phase (geometric run length).
const MEAN_PHASE_LEN: f64 = 24.0;

/// One request of a timed stream.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamKind<const D: usize> {
    /// A range query window.
    Range(Rect<D>),
    /// A k-nearest-neighbour probe.
    Knn(Point<D>, usize),
    /// A write: insert this object (sized like the data, aimed at a
    /// populated region).
    Insert(Rect<D>),
    /// A write: delete the base dataset's object at this index. Each
    /// index is issued at most once per stream, so replaying the stream
    /// against a store seeded with the base dataset produces live
    /// deletes (until the base runs out).
    Delete(u32),
}

/// A request plus its scheduled arrival offset from stream start.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedQuery<const D: usize> {
    /// Arrival time in milliseconds since the stream began
    /// (non-decreasing along the stream).
    pub at_ms: f64,
    /// The request payload.
    pub kind: StreamKind<D>,
}

/// Stream shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamProfile {
    /// Long-run average arrival rate (requests/second) the inter-arrival
    /// draws are scaled to.
    pub mean_rate_hz: f64,
    /// Arrival-time skew: ≥ 1. Bursts run `burstiness`× faster than the
    /// mean, lulls `burstiness`× slower; `1.0` is a uniform Poisson
    /// stream.
    pub burstiness: f64,
    /// Fraction of requests that are kNN probes (the rest are ranges).
    pub knn_fraction: f64,
    /// `k` for every kNN probe.
    pub knn_k: usize,
    /// Range query side length as a fraction of the domain extent
    /// (per-query jittered ×[0.25, 1.75]).
    pub extent_frac: f64,
    /// Fraction of requests that are writes (`0.0` = the read-only
    /// stream of earlier benches, byte-identical per seed). Writes
    /// split between inserts and deletes per `delete_share`.
    pub write_fraction: f64,
    /// Fraction of writes that are deletes (the rest are inserts).
    /// Deletes draw *distinct* base-dataset indices; once the base is
    /// exhausted the stream falls back to inserts.
    pub delete_share: f64,
}

impl Default for StreamProfile {
    fn default() -> Self {
        StreamProfile {
            mean_rate_hz: 2_000.0,
            burstiness: 4.0,
            knn_fraction: 0.2,
            knn_k: 10,
            extent_frac: 0.02,
            write_fraction: 0.0,
            delete_share: 0.5,
        }
    }
}

/// Generate `n` timed queries over `data` under `profile`,
/// deterministically per `seed`.
pub fn query_stream<const D: usize>(
    data: &Dataset<D>,
    n: usize,
    profile: &StreamProfile,
    seed: u64,
) -> Vec<TimedQuery<D>> {
    assert!(!data.is_empty(), "a stream needs data to aim queries at");
    assert!(profile.mean_rate_hz > 0.0, "rate must be positive");
    assert!(profile.burstiness >= 1.0, "burstiness is ≥ 1");
    assert!(
        (0.0..=1.0).contains(&profile.knn_fraction),
        "knn_fraction is a fraction"
    );
    assert!(
        (0.0..=1.0).contains(&profile.write_fraction),
        "write_fraction is a fraction"
    );
    assert!(
        (0.0..=1.0).contains(&profile.delete_share),
        "delete_share is a fraction"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57AE_A11B_0057_AE4D);
    // Undeleted base indices, consumed in shuffled order so every
    // delete hits a distinct (initially live) object.
    let mut deletable: Vec<u32> = (0..data.len() as u32).collect();
    // Requests split evenly between phases, so the raw mean gap would be
    // base × (b + 1/b)/2; normalise so the configured rate is the
    // long-run average at every burstiness.
    let phase_norm = (profile.burstiness + 1.0 / profile.burstiness) / 2.0;
    let mean_gap_ms = 1_000.0 / profile.mean_rate_hz / phase_norm;
    let mut burst = true;
    let mut clock_ms = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Geometric phase switching, then an exponential inter-arrival
        // at the phase's rate.
        if rng.gen_range(0.0..1.0) < 1.0 / MEAN_PHASE_LEN {
            burst = !burst;
        }
        let phase_gap = if burst {
            mean_gap_ms / profile.burstiness
        } else {
            mean_gap_ms * profile.burstiness
        };
        // Inverse-CDF exponential; clamp the uniform away from 0 so the
        // log stays finite.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        clock_ms += -u.ln() * phase_gap;
        // Aim at the data: a random object's centre plus jitter of one
        // query extent.
        let anchor = data.boxes[rng.gen_range(0..data.len())].center();
        // Writes are decided first; the `> 0.0` guard keeps read-only
        // streams byte-identical per seed to the pre-write generator.
        let is_write =
            profile.write_fraction > 0.0 && rng.gen_range(0.0..1.0) < profile.write_fraction;
        let kind = if is_write {
            let want_delete = rng.gen_range(0.0..1.0) < profile.delete_share;
            if want_delete && !deletable.is_empty() {
                let pick = rng.gen_range(0..deletable.len());
                StreamKind::Delete(deletable.swap_remove(pick))
            } else {
                // Insert an object shaped like a random existing one,
                // dropped near the anchor (churn follows the data).
                let template = data.boxes[rng.gen_range(0..data.len())];
                let mut lo = [0.0; D];
                let mut hi = [0.0; D];
                for i in 0..D {
                    let jig = data.domain.extent(i) * profile.extent_frac.max(0.01);
                    let jitter = if jig > 0.0 {
                        rng.gen_range(-jig..jig)
                    } else {
                        0.0
                    };
                    lo[i] = anchor[i] + jitter;
                    hi[i] = lo[i] + template.extent(i);
                }
                StreamKind::Insert(Rect::new(Point(lo), Point(hi)))
            }
        } else if rng.gen_range(0.0..1.0) < profile.knn_fraction {
            StreamKind::Knn(anchor, profile.knn_k)
        } else {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for i in 0..D {
                let side = data.domain.extent(i) * profile.extent_frac * rng.gen_range(0.25..1.75);
                // A degenerate axis (zero domain extent, or
                // extent_frac = 0 for point queries) collapses to a
                // point query on that axis — an empty f64 range would
                // panic the sampler.
                let jitter = if side > 0.0 {
                    rng.gen_range(-side..side)
                } else {
                    0.0
                };
                lo[i] = anchor[i] + jitter - side / 2.0;
                hi[i] = anchor[i] + jitter + side / 2.0;
            }
            StreamKind::Range(Rect::new(Point(lo), Point(hi)))
        };
        out.push(TimedQuery {
            at_ms: clock_ms,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::clustered;

    fn stream(n: usize, burstiness: f64, seed: u64) -> Vec<TimedQuery<2>> {
        let data = clustered::<2>(2_000, 6, 20_000.0, 0.1, 5);
        let profile = StreamProfile {
            burstiness,
            ..StreamProfile::default()
        };
        query_stream(&data, n, &profile, seed)
    }

    /// Coefficient of variation of the inter-arrival gaps.
    fn gap_cv(s: &[TimedQuery<2>]) -> f64 {
        let gaps: Vec<f64> = s.windows(2).map(|w| w[1].at_ms - w[0].at_ms).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        var.sqrt() / mean
    }

    #[test]
    fn deterministic_sorted_and_sized() {
        let a = stream(500, 4.0, 11);
        assert_eq!(a.len(), 500);
        assert_eq!(a, stream(500, 4.0, 11));
        assert_ne!(a, stream(500, 4.0, 12));
        assert!(
            a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms),
            "arrival times are non-decreasing"
        );
        assert!(a[0].at_ms > 0.0);
    }

    #[test]
    fn mean_rate_is_roughly_honoured() {
        // The rate normalisation must hold at every burstiness, not
        // just for the plain Poisson stream.
        for burstiness in [1.0, 4.0, 8.0] {
            let s = stream(4_000, burstiness, 21);
            let span_s = s.last().unwrap().at_ms / 1_000.0;
            let rate = 4_000.0 / span_s;
            // Sampling noise on 4k arrivals stays well within ±30 %.
            assert!(
                (1_400.0..2_600.0).contains(&rate),
                "measured {rate:.0} Hz vs configured 2000 Hz at burstiness {burstiness}"
            );
        }
    }

    #[test]
    fn burstiness_increases_arrival_skew() {
        let smooth = gap_cv(&stream(4_000, 1.0, 31));
        let bursty = gap_cv(&stream(4_000, 6.0, 31));
        // Exponential gaps have CV ≈ 1; modulation pushes it well up.
        assert!(
            (0.8..1.3).contains(&smooth),
            "Poisson stream CV was {smooth:.2}"
        );
        assert!(
            bursty > smooth + 0.5,
            "burstiness 6 must skew arrivals (CV {bursty:.2} vs {smooth:.2})"
        );
    }

    #[test]
    fn kinds_follow_the_fraction() {
        let data = clustered::<2>(1_000, 4, 20_000.0, 0.1, 9);
        let profile = StreamProfile {
            knn_fraction: 0.5,
            knn_k: 7,
            ..StreamProfile::default()
        };
        let s = query_stream(&data, 2_000, &profile, 13);
        let knn = s
            .iter()
            .filter(|q| matches!(q.kind, StreamKind::Knn(_, 7)))
            .count();
        assert!(
            (800..1_200).contains(&knn),
            "knn share {knn}/2000 is far from the configured half"
        );
        // All-range and all-knn extremes work too.
        let all_range = query_stream(
            &data,
            50,
            &StreamProfile {
                knn_fraction: 0.0,
                ..profile
            },
            13,
        );
        assert!(all_range
            .iter()
            .all(|q| matches!(q.kind, StreamKind::Range(_))));
    }

    #[test]
    fn write_fraction_mixes_inserts_and_deletes() {
        let data = clustered::<2>(1_000, 4, 20_000.0, 0.1, 9);
        let profile = StreamProfile {
            write_fraction: 0.4,
            delete_share: 0.5,
            ..StreamProfile::default()
        };
        let s = query_stream(&data, 3_000, &profile, 23);
        assert_eq!(s, query_stream(&data, 3_000, &profile, 23));
        let inserts = s
            .iter()
            .filter(|q| matches!(q.kind, StreamKind::Insert(_)))
            .count();
        let deletes: Vec<u32> = s
            .iter()
            .filter_map(|q| match q.kind {
                StreamKind::Delete(i) => Some(i),
                _ => None,
            })
            .collect();
        let writes = inserts + deletes.len();
        assert!(
            (900..1_500).contains(&writes),
            "write share {writes}/3000 is far from the configured 40 %"
        );
        assert!(inserts > 200 && deletes.len() > 200, "both kinds present");
        // Deletes are distinct, in range, so replays against a store
        // seeded with `data` always hit live objects.
        let mut seen = std::collections::HashSet::new();
        for &d in &deletes {
            assert!((d as usize) < data.len(), "delete {d} out of range");
            assert!(seen.insert(d), "delete {d} issued twice");
        }
        // Inserted rects are finite and data-shaped.
        for q in &s {
            if let StreamKind::Insert(r) = &q.kind {
                assert!(r.is_finite());
            }
        }
    }

    #[test]
    fn deletes_fall_back_to_inserts_when_base_is_exhausted() {
        // 20 base objects, all-write all-delete stream: the first 20
        // writes consume the base, the rest must become inserts.
        let data = clustered::<2>(20, 2, 5_000.0, 0.1, 5);
        let profile = StreamProfile {
            write_fraction: 1.0,
            delete_share: 1.0,
            ..StreamProfile::default()
        };
        let s = query_stream(&data, 100, &profile, 3);
        let deletes = s
            .iter()
            .filter(|q| matches!(q.kind, StreamKind::Delete(_)))
            .count();
        let inserts = s
            .iter()
            .filter(|q| matches!(q.kind, StreamKind::Insert(_)))
            .count();
        assert_eq!(deletes, 20, "every base object deleted exactly once");
        assert_eq!(inserts, 80);
    }

    #[test]
    fn zero_write_fraction_is_the_read_only_stream() {
        // The write extension must not perturb existing read-only
        // streams: with write_fraction = 0 no write ever appears and
        // the generator stays deterministic per seed.
        let s = stream(800, 4.0, 11);
        assert!(s
            .iter()
            .all(|q| matches!(q.kind, StreamKind::Range(_) | StreamKind::Knn(..))));
    }

    #[test]
    fn degenerate_extents_yield_point_queries() {
        // extent_frac = 0 (point queries) and a zero-extent domain axis
        // (all data on a line) must not panic the jitter sampler.
        let data = clustered::<2>(200, 3, 20_000.0, 0.1, 9);
        let profile = StreamProfile {
            knn_fraction: 0.0,
            extent_frac: 0.0,
            ..StreamProfile::default()
        };
        let s = query_stream(&data, 30, &profile, 17);
        assert!(s.iter().all(|q| match &q.kind {
            StreamKind::Range(r) => r.extent(0) == 0.0 && r.extent(1) == 0.0,
            _ => false,
        }));

        let mut line = data.clone();
        // Collapse the domain (and the boxes) onto the line y = 5.
        line.domain = Rect::new(
            Point([line.domain.lo[0], 5.0]),
            Point([line.domain.hi[0], 5.0]),
        );
        for b in &mut line.boxes {
            *b = Rect::new(Point([b.lo[0], 5.0]), Point([b.hi[0], 5.0]));
        }
        let s = query_stream(&line, 30, &StreamProfile::default(), 19);
        assert_eq!(s.len(), 30);
        for q in &s {
            if let StreamKind::Range(r) = &q.kind {
                assert_eq!(r.extent(1), 0.0, "degenerate axis stays a point");
            }
        }
    }
}
