//! Common dataset container.

use cbb_geom::Rect;
use cbb_rtree::DataId;

/// A generated dataset: named boxes inside a known domain.
#[derive(Clone, Debug)]
pub struct Dataset<const D: usize> {
    /// Benchmark name (`rea02`, `axo03`, …).
    pub name: String,
    /// Object MBBs (possibly degenerate: points, segments).
    pub boxes: Vec<Rect<D>>,
    /// The world bounds all objects fall into (Hilbert grid domain).
    pub domain: Rect<D>,
}

impl<const D: usize> Dataset<D> {
    /// Number of objects.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// `(rect, id)` pairs ready for `RTree::bulk_load` / insertion.
    pub fn items(&self) -> Vec<(Rect<D>, DataId)> {
        self.boxes
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, DataId(i as u32)))
            .collect()
    }

    /// Contract box *centers* toward the origin by `factor` (> 1) while
    /// keeping box extents, multiplying spatial density by `factor^D`.
    ///
    /// Needed when experiments subsample the paper-scale datasets: object
    /// *density* drives join selectivity and node occupancy, and plain
    /// coordinate scaling is density-invariant (boxes shrink along with
    /// the domain). The join experiments subsample at `1/s` of the paper
    /// counts and densify by `s^(1/D)` to restore the paper's density.
    pub fn densified(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "densification factor must be ≥ 1");
        for b in self.boxes.iter_mut() {
            let c = b.center();
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for i in 0..D {
                let half = b.extent(i) / 2.0;
                lo[i] = c[i] / factor - half;
                hi[i] = c[i] / factor + half;
            }
            *b = Rect::new(cbb_geom::Point(lo), cbb_geom::Point(hi));
        }
        self.domain = Rect::mbb_of(&self.boxes).expect("non-empty dataset");
        self
    }

    /// The densification factor restoring the density of a `paper_count`
    /// dataset: `(paper_count / len)^(1/D)`.
    pub fn density_restoring_factor(&self, paper_count: usize) -> f64 {
        ((paper_count as f64 / self.len().max(1) as f64).max(1.0)).powf(1.0 / D as f64)
    }

    /// Panic unless every box is finite and inside the domain (generator
    /// post-condition; used by tests).
    pub fn check_integrity(&self) {
        for (i, b) in self.boxes.iter().enumerate() {
            assert!(b.is_finite(), "{}: box {i} not finite", self.name);
            assert!(
                self.domain.contains_rect(b),
                "{}: box {i} {b:?} outside domain {:?}",
                self.name,
                self.domain
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::Point;

    #[test]
    fn densified_preserves_extents_and_boosts_density() {
        let d = Dataset {
            name: "t".into(),
            boxes: vec![
                Rect::new(Point([100.0, 100.0]), Point([102.0, 103.0])),
                Rect::new(Point([200.0, 200.0]), Point([204.0, 201.0])),
            ],
            domain: Rect::new(Point([0.0, 0.0]), Point([300.0, 300.0])),
        };
        let centers_before: Vec<_> = d.boxes.iter().map(|b| b.center()).collect();
        let dd = d.densified(10.0);
        for (b, c0) in dd.boxes.iter().zip(&centers_before) {
            assert!((b.extent(0) - if c0[0] < 150.0 { 2.0 } else { 4.0 }).abs() < 1e-9);
            let c = b.center();
            assert!((c[0] - c0[0] / 10.0).abs() < 1e-9);
        }
        dd.check_integrity();
    }

    #[test]
    fn density_factor_formula() {
        let d = Dataset::<2> {
            name: "t".into(),
            boxes: vec![Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])); 100],
            domain: Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0])),
        };
        assert!((d.density_restoring_factor(10_000) - 10.0).abs() < 1e-9);
        assert_eq!(d.density_restoring_factor(50), 1.0); // never shrinks
    }

    #[test]
    fn items_enumerate_ids() {
        let d = Dataset {
            name: "t".into(),
            boxes: vec![
                Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])),
                Rect::new(Point([2.0, 2.0]), Point([3.0, 3.0])),
            ],
            domain: Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0])),
        };
        let items = d.items();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].1, DataId(1));
        d.check_integrity();
        assert!(!d.is_empty());
        assert_eq!(d.len(), 2);
    }
}
