//! Skewed synthetic workloads: clustered and Zipfian placements.
//!
//! The paper's benchmark datasets are *spatially* irregular but not
//! adversarially skewed; the partitioned execution engine needs
//! workloads where a uniform grid demonstrably unbalances (Aji et al.,
//! *Effective Spatial Data Partitioning for Scalable Query Processing*).
//! Two generators cover the classic skew shapes:
//!
//! * [`clustered`] — a handful of Gaussian-ish blobs with Zipf-ranked
//!   populations over a sparse uniform background: the "cities on a map"
//!   shape. The top-ranked blob alone holds a constant fraction of all
//!   objects, so one grid tile goes hot.
//! * [`zipfian`] — coordinates drawn from a Zipf rank distribution over
//!   grid cells: smooth heavy-tailed density without distinct blobs,
//!   the "long-tail popularity" shape.
//!
//! Both are deterministic per seed and emit [`Dataset`]s in the same
//! `1 000 000`-unit domain family as the `par0d` stand-ins.

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Domain side length (matches `par0d`).
const DOMAIN: f64 = 1_000_000.0;

/// Zipf exponent for cluster populations / cell ranks: `s = 1` is the
/// classic harmonic shape — heavy but not degenerate.
const ZIPF_S: f64 = 1.0;

/// Box sides: uniform in `[0.5, SIDE_MAX]` — small relative to the
/// domain, so skew comes from *placement*, not object size.
const SIDE_MAX: f64 = 900.0;

/// Draw an index in `0..n` with probability ∝ `1/(rank+1)^s` via the
/// precomputed cumulative weights `cdf` (last entry = total mass).
fn zipf_index(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let u = rng.gen_range(0.0..total);
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// Cumulative Zipf weights for `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|k| {
            acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
            acc
        })
        .collect()
}

/// A box with uniform sides in `[0.5, SIDE_MAX]` centred near `c`,
/// clamped into the domain.
fn box_at<const D: usize>(rng: &mut StdRng, c: [f64; D]) -> Rect<D> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for i in 0..D {
        let side = rng.gen_range(0.5..SIDE_MAX);
        let center = c[i].clamp(0.0, DOMAIN);
        lo[i] = (center - side / 2.0).max(0.0);
        hi[i] = (center + side / 2.0).min(DOMAIN);
    }
    Rect::new(Point(lo), Point(hi))
}

/// `n` boxes in `clusters` Zipf-populated blobs plus a `background`
/// fraction (0..1) of uniform scatter. Each blob is a product of
/// triangular marginals of half-width `spread` (triangular ≈ Gaussian
/// core without needing a normal sampler), centred uniformly at random.
///
/// With the defaults used by the benches (`clusters = 8`,
/// `background = 0.1`), rank-0 alone draws ≈ 33 % of all objects into
/// ≈ `spread`-sized neighbourhood — a guaranteed hot tile for any
/// uniform grid coarser than `spread`.
pub fn clustered<const D: usize>(
    n: usize,
    clusters: usize,
    spread: f64,
    background: f64,
    seed: u64,
) -> Dataset<D> {
    clustered_with_layout(n, clusters, spread, background, seed, seed)
}

/// [`clustered`] with the blob layout seeded separately from the object
/// draws: two datasets sharing a `layout_seed` cluster at the **same**
/// places (think restaurants ⋈ customers of the same cities), which is
/// what makes their join concentrate in a few hot tiles. Different
/// `seed`s keep the objects themselves independent.
pub fn clustered_with_layout<const D: usize>(
    n: usize,
    clusters: usize,
    spread: f64,
    background: f64,
    layout_seed: u64,
    seed: u64,
) -> Dataset<D> {
    assert!(clusters >= 1, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&background),
        "background is a fraction"
    );
    assert!(spread > 0.0, "spread must be positive");
    let mut layout_rng = StdRng::seed_from_u64(layout_seed ^ 0xC1D5_7E4E_D5EE_D001);
    let centers: Vec<[f64; D]> = (0..clusters)
        .map(|_| std::array::from_fn(|_| layout_rng.gen_range(0.0..DOMAIN)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1D5_7E4E_D5EE_D000);
    let cdf = zipf_cdf(clusters);
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let c: [f64; D] = if rng.gen_bool(background) {
            std::array::from_fn(|_| rng.gen_range(0.0..DOMAIN))
        } else {
            let center = centers[zipf_index(&mut rng, &cdf)];
            std::array::from_fn(|i| {
                // Triangular deviate in ±spread: sum of two uniforms.
                let t = rng.gen_range(-spread..spread) + rng.gen_range(-spread..spread);
                center[i] + t / 2.0
            })
        };
        boxes.push(box_at(&mut rng, c));
    }
    Dataset {
        name: format!("clu0{D}"),
        boxes,
        domain: Rect::new(Point::splat(0.0), Point::splat(DOMAIN)),
    }
}

/// `n` boxes whose per-axis cell is drawn from a Zipf rank distribution
/// over `cells` cells (cell ranks are shuffled per axis so the dense
/// cells are scattered, not stacked in a corner), uniform within a cell.
pub fn zipfian<const D: usize>(n: usize, cells: usize, seed: u64) -> Dataset<D> {
    assert!(cells >= 1, "need at least one cell per axis");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21BF_1A11_0000_0001);
    let cdf = zipf_cdf(cells);
    // Per-axis permutation of cell ranks.
    let perms: Vec<Vec<usize>> = (0..D)
        .map(|_| {
            let mut perm: Vec<usize> = (0..cells).collect();
            // Fisher–Yates with the compat rng.
            for i in (1..cells).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            perm
        })
        .collect();
    let width = DOMAIN / cells as f64;
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let c: [f64; D] = std::array::from_fn(|i| {
            let cell = perms[i][zipf_index(&mut rng, &cdf)];
            (cell as f64 + rng.gen_range(0.0..1.0)) * width
        });
        boxes.push(box_at(&mut rng, c));
    }
    Dataset {
        name: format!("zip0{D}"),
        boxes,
        domain: Rect::new(Point::splat(0.0), Point::splat(DOMAIN)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fraction of objects whose center falls into the densest cell of a
    /// `per_dim`-per-axis histogram.
    fn densest_cell_share<const D: usize>(d: &Dataset<D>, per_dim: usize) -> f64 {
        let mut counts = vec![0usize; per_dim.pow(D as u32)];
        let width = DOMAIN / per_dim as f64;
        for b in &d.boxes {
            let mut idx = 0;
            for i in 0..D {
                let c = ((b.lo[i] + b.hi[i]) / 2.0 / width) as usize;
                idx = idx * per_dim + c.min(per_dim - 1);
            }
            counts[idx] += 1;
        }
        *counts.iter().max().unwrap() as f64 / d.len() as f64
    }

    #[test]
    fn clustered_generates_valid_and_deterministic() {
        let a = clustered::<2>(3_000, 8, 20_000.0, 0.1, 42);
        assert_eq!(a.len(), 3_000);
        a.check_integrity();
        let b = clustered::<2>(3_000, 8, 20_000.0, 0.1, 42);
        assert_eq!(a.boxes, b.boxes);
        let c = clustered::<2>(3_000, 8, 20_000.0, 0.1, 43);
        assert_ne!(a.boxes, c.boxes);
        let d3 = clustered::<3>(500, 4, 20_000.0, 0.2, 1);
        assert_eq!(d3.len(), 500);
        d3.check_integrity();
    }

    #[test]
    fn clustered_is_actually_skewed() {
        let d = clustered::<2>(8_000, 8, 20_000.0, 0.1, 7);
        // Uniform data puts ≈ 1/64 ≈ 1.6 % in the densest 8×8 cell; the
        // rank-0 cluster alone should put >10 % there.
        let share = densest_cell_share(&d, 8);
        assert!(share > 0.10, "densest-cell share {share}");
    }

    #[test]
    fn shared_layout_shares_blobs_but_not_objects() {
        let a = clustered_with_layout::<2>(2_000, 6, 15_000.0, 0.1, 99, 1);
        let b = clustered_with_layout::<2>(2_000, 6, 15_000.0, 0.1, 99, 2);
        assert_ne!(a.boxes, b.boxes, "objects must differ across seeds");
        // Same layout → the densest cells coincide; measure by comparing
        // per-cell histograms: the top cell of `a` is also hot in `b`.
        let per_dim = 10usize;
        let hist = |d: &Dataset<2>| {
            let mut counts = vec![0usize; per_dim * per_dim];
            let width = DOMAIN / per_dim as f64;
            for bx in &d.boxes {
                let cx = (((bx.lo[0] + bx.hi[0]) / 2.0 / width) as usize).min(per_dim - 1);
                let cy = (((bx.lo[1] + bx.hi[1]) / 2.0 / width) as usize).min(per_dim - 1);
                counts[cy * per_dim + cx] += 1;
            }
            counts
        };
        let (ha, hb) = (hist(&a), hist(&b));
        let top_a = (0..ha.len()).max_by_key(|&i| ha[i]).unwrap();
        assert!(
            hb[top_a] * 20 > b.len(),
            "b holds only {}/{} objects in a's hottest cell",
            hb[top_a],
            b.len()
        );
    }

    #[test]
    fn zipfian_generates_valid_and_skewed() {
        let d = zipfian::<2>(8_000, 16, 11);
        assert_eq!(d.len(), 8_000);
        d.check_integrity();
        let share = densest_cell_share(&d, 16);
        // Uniform would be ≈ 1/256 ≈ 0.4 %; Zipf's top cell ≈ (1/H_16)².
        assert!(share > 0.03, "densest-cell share {share}");
        let again = zipfian::<2>(8_000, 16, 11);
        assert_eq!(d.boxes, again.boxes);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = clustered::<2>(10, 0, 1_000.0, 0.0, 1);
    }
}
