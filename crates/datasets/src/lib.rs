//! # cbb-datasets — benchmark dataset and query-workload generators
//!
//! The paper evaluates on seven datasets: four from the multidimensional
//! index benchmark of Beckmann & Seeger \[33\] (`rea02`, `rea03`, `par02`,
//! `par03`) and three Human-Brain-Project neuroscience extracts (`axo03`,
//! `den03`, `neu03`). None are redistributable, so this crate generates
//! synthetic stand-ins that reproduce the *load-bearing properties* each
//! experiment depends on (see DESIGN.md §4 for the substitution table):
//!
//! * `par0d` — boxes with heavy-tailed (Pareto) size/shape variance;
//! * `rea02` — street segments: thin, often axis-aligned, grid-clustered;
//! * `rea03` — pure points (3 correlated float attributes, skewed);
//! * `axo03` / `den03` / `neu03` — long skinny boxes from segmented 3-d
//!   random-walk tubules (axons/dendrites/neurites).
//!
//! Beyond the paper's seven, [`skew`] adds adversarially skewed
//! workloads (clustered blobs, Zipfian cells) used to evaluate the
//! engine's adaptive partitioners.
//!
//! All generators are deterministic given a seed. [`queries`] implements
//! the benchmark's query generator: density-following dithered object
//! centers with extents calibrated to the three selectivity profiles
//! (≈1 / ≈10 / ≈100 results).

pub mod dataset;
pub mod multi;
pub mod neuro;
pub mod par;
pub mod queries;
pub mod rea;
pub mod registry;
pub mod skew;
pub mod stream;

pub use dataset::Dataset;
pub use multi::{layers, LayerKind, LayerSpec, NamedLayer};
pub use queries::{generate_queries, QueryProfile};
pub use registry::{dataset2, dataset3, Scale, DATASETS_2D, DATASETS_3D};
pub use skew::{clustered, clustered_with_layout, zipfian};
pub use stream::{query_stream, StreamKind, StreamProfile, TimedQuery};
