//! `par02` / `par03` stand-ins: synthetic boxes "generated with a very
//! large variance in size and shape" (\[33\]) — modelled with uniform
//! centers and independent Pareto-distributed side lengths.

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Domain side length (arbitrary units; matches the benchmark's unit cube
/// scaled up for readable coordinates).
const DOMAIN: f64 = 1_000_000.0;

/// Pareto shape: α ≈ 1.2 gives the heavy tail ("very large variance");
/// the scale `x_m` sets the typical object size.
const PARETO_ALPHA: f64 = 1.2;
const PARETO_XM: f64 = 40.0;

/// Cap on any side (5 % of the domain) so single objects cannot dominate.
const MAX_SIDE: f64 = 0.05 * DOMAIN;

/// Draw a Pareto(α, x_m) deviate by inverse transform.
fn pareto(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    PARETO_XM / u.powf(1.0 / PARETO_ALPHA)
}

/// Generate the `par0{D}` dataset with `n` boxes.
pub fn generate<const D: usize>(n: usize, seed: u64) -> Dataset<D> {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = Rect::new(Point::splat(0.0), Point::splat(DOMAIN));
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            // Independent per-dimension Pareto draws: extreme aspect
            // ratios are common, exactly what makes par0d "challenging to
            // approximate".
            let side = pareto(&mut rng).min(MAX_SIDE);
            let center = rng.gen_range(0.0..DOMAIN);
            lo[i] = (center - side / 2.0).max(0.0);
            hi[i] = (center + side / 2.0).min(DOMAIN);
        }
        boxes.push(Rect::new(Point(lo), Point(hi)));
    }
    Dataset {
        name: format!("par0{D}"),
        boxes,
        domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_inside_domain() {
        let d = generate::<2>(2_000, 1);
        assert_eq!(d.len(), 2_000);
        d.check_integrity();
        let d3 = generate::<3>(500, 1);
        assert_eq!(d3.len(), 500);
        d3.check_integrity();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate::<2>(100, 7);
        let b = generate::<2>(100, 7);
        assert_eq!(a.boxes, b.boxes);
        let c = generate::<2>(100, 8);
        assert_ne!(a.boxes, c.boxes);
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let d = generate::<2>(20_000, 3);
        let mut sides: Vec<f64> = d.boxes.iter().map(|b| b.extent(0)).collect();
        sides.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sides[sides.len() / 2];
        let p999 = sides[(sides.len() as f64 * 0.999) as usize];
        // Heavy tail: the 99.9th percentile dwarfs the median.
        assert!(
            p999 > 20.0 * median,
            "tail p99.9 = {p999}, median = {median}"
        );
        // And the cap holds.
        assert!(*sides.last().unwrap() <= MAX_SIDE + 1e-9);
    }

    #[test]
    fn aspect_ratios_vary_widely() {
        let d = generate::<2>(10_000, 5);
        let extreme = d
            .boxes
            .iter()
            .filter(|b| {
                let (w, h) = (b.extent(0).max(1e-9), b.extent(1).max(1e-9));
                w / h > 10.0 || h / w > 10.0
            })
            .count();
        assert!(
            extreme > 500,
            "expected many extreme aspect ratios, got {extreme}"
        );
    }
}
