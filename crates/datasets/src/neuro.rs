//! Neuroscience dataset stand-ins (`axo03`, `den03`, `neu03`).
//!
//! The paper's Human-Brain-Project datasets contain "volumetric boxes
//! representing different spatial objects in a 3d brain model": segments
//! of axons, dendrites, and neurites — long, skinny, *oriented* objects
//! whose axis-aligned MBBs are almost entirely dead space (Figure 1b shows
//! ≈94 % for axo03). We reproduce that geometry with persistent 3-d
//! random-walk tubules: each walk emits consecutive cylinder segments
//! whose MBBs become the dataset.
//!
//! Morphology knobs per dataset (qualitative, after the neuroscience
//! literature the paper builds on):
//! * axons (`axo03`) — long walks, thin radius, highly persistent;
//! * dendrites (`den03`) — shorter walks, thicker, more tortuous, branch;
//! * neurites (`neu03`) — a mixture of both (neurite = any projection).

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Brain-volume domain (µm-ish).
const DOMAIN: f64 = 40_000.0;

/// Tubule morphology parameters.
#[derive(Clone, Copy, Debug)]
pub struct Morphology {
    /// Mean segments per walk.
    pub segments_per_walk: usize,
    /// Segment length range.
    pub seg_len: (f64, f64),
    /// Tube radius range.
    pub radius: (f64, f64),
    /// Direction persistence in [0, 1): 0 = fully random walk, →1 =
    /// straight fibre.
    pub persistence: f64,
    /// Probability that a walk spawns a branch at a step.
    pub branch_prob: f64,
}

/// Axon morphology: long, thin, straight-ish fibres.
pub const AXON: Morphology = Morphology {
    segments_per_walk: 160,
    seg_len: (30.0, 90.0),
    radius: (0.4, 1.5),
    persistence: 0.92,
    branch_prob: 0.002,
};

/// Dendrite morphology: shorter, thicker, tortuous, branching.
pub const DENDRITE: Morphology = Morphology {
    segments_per_walk: 60,
    seg_len: (10.0, 40.0),
    radius: (0.8, 3.0),
    persistence: 0.75,
    branch_prob: 0.02,
};

/// Number of shared circuit hotspots where arbors of *all* neuro datasets
/// concentrate. Axons and dendrites in real tissue co-locate in circuits;
/// without shared hotspots, independently seeded walks almost never meet
/// and spatial joins between the datasets would be empty.
const HOTSPOTS: usize = 64;

/// Hotspot spread (σ of the Gaussian offset around a hotspot center).
const HOTSPOT_SIGMA: f64 = 2_000.0;

/// Deterministic hotspot centers shared by every neuro dataset.
fn hotspots() -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(0x0CB8_C12C);
    (0..HOTSPOTS)
        .map(|_| {
            [
                rng.gen_range(0.1 * DOMAIN..0.9 * DOMAIN),
                rng.gen_range(0.1 * DOMAIN..0.9 * DOMAIN),
                rng.gen_range(0.1 * DOMAIN..0.9 * DOMAIN),
            ]
        })
        .collect()
}

/// Generate a tubule dataset of `n` segment boxes.
pub fn tubules(name: &str, n: usize, morph: Morphology, seed: u64) -> Dataset<3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = Rect::new(Point::splat(0.0), Point::splat(DOMAIN));
    // Use only as many hotspots as keeps ~60 arbors per hotspot — the
    // paper-scale interleaving factor: real tissue overlays dozens of
    // neurons' processes in every micro-region, and that interleaving (not
    // just density) is what makes leaf MBBs overlap and queries touch dead
    // leaves. Small subsamples concentrate into fewer hotspots; all
    // datasets draw from the same deterministic prefix, preserving
    // co-location.
    let arbor_budget_max = morph.segments_per_walk * 6;
    let spots_used = (n / (arbor_budget_max * 60)).clamp(1, HOTSPOTS);
    let spots: Vec<[f64; 3]> = hotspots().into_iter().take(spots_used).collect();
    let mut boxes = Vec::with_capacity(n);

    // Walk state stack: (position, direction); branches push new walks.
    // Each seed's arbor is budget-capped: the branching process is
    // otherwise supercritical for dendrites (≈1.5 branches per walk) and a
    // single seed would generate the whole dataset in one spot.
    let mut stack: Vec<([f64; 3], [f64; 3])> = Vec::new();
    let mut arbor_budget = 0usize;
    let mut home = [0.0; 3];
    while boxes.len() < n {
        if stack.is_empty() || arbor_budget == 0 {
            stack.clear();
            // Seed near a shared circuit hotspot (Box–Muller offsets).
            let spot = spots[rng.gen_range(0..spots.len())];
            let mut pos = [0.0; 3];
            for (i, p) in pos.iter_mut().enumerate() {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *p = (spot[i] + HOTSPOT_SIGMA * g).clamp(0.05 * DOMAIN, 0.95 * DOMAIN);
            }
            home = spot;
            stack.push((pos, random_unit(&mut rng)));
            arbor_budget = arbor_budget_max;
        }
        let (mut pos, mut dir) = stack.pop().expect("non-empty");
        let steps = (morph.segments_per_walk as f64 * rng.gen_range(0.5..1.5)) as usize;
        for _ in 0..steps.min(arbor_budget) {
            if boxes.len() >= n {
                break;
            }
            arbor_budget -= 1;
            // Persistent direction update, mean-reverting toward the home
            // hotspot: real fibres stay bundled within their circuit, and
            // that is what interleaves distinct arbors at leaf-node scale
            // (the source of the paper's node overlap on neuro data).
            let jitter = random_unit(&mut rng);
            let dist = ((pos[0] - home[0]).powi(2)
                + (pos[1] - home[1]).powi(2)
                + (pos[2] - home[2]).powi(2))
            .sqrt();
            let pull = (dist / (3.0 * HOTSPOT_SIGMA)).min(1.0) * 0.12;
            for i in 0..3 {
                let toward = if dist > 1e-9 {
                    (home[i] - pos[i]) / dist
                } else {
                    0.0
                };
                dir[i] = morph.persistence * dir[i]
                    + (1.0 - morph.persistence) * jitter[i]
                    + pull * toward;
            }
            normalize(&mut dir);

            let len = rng.gen_range(morph.seg_len.0..morph.seg_len.1);
            let radius = rng.gen_range(morph.radius.0..morph.radius.1);
            let end = [
                (pos[0] + dir[0] * len).clamp(0.0, DOMAIN),
                (pos[1] + dir[1] * len).clamp(0.0, DOMAIN),
                (pos[2] + dir[2] * len).clamp(0.0, DOMAIN),
            ];
            // MBB of the cylinder segment: hull of both endpoints inflated
            // by the radius.
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for i in 0..3 {
                lo[i] = (pos[i].min(end[i]) - radius).max(0.0);
                hi[i] = (pos[i].max(end[i]) + radius).min(DOMAIN);
            }
            boxes.push(Rect::new(Point(lo), Point(hi)));
            pos = end;

            // Reflect at the boundary to keep walks inside the tissue.
            for i in 0..3 {
                if pos[i] <= 0.0 || pos[i] >= DOMAIN {
                    dir[i] = -dir[i];
                }
            }
            if rng.gen_bool(morph.branch_prob) {
                stack.push((pos, random_unit(&mut rng)));
            }
        }
    }
    Dataset {
        name: name.into(),
        boxes,
        domain,
    }
}

/// `axo03`: axon segments.
pub fn axons(n: usize, seed: u64) -> Dataset<3> {
    tubules("axo03", n, AXON, seed)
}

/// `den03`: dendrite segments.
pub fn dendrites(n: usize, seed: u64) -> Dataset<3> {
    tubules("den03", n, DENDRITE, seed ^ 0xDE0D)
}

/// `neu03`: neurites — a mixture of axon-like and dendrite-like segments.
pub fn neurites(n: usize, seed: u64) -> Dataset<3> {
    let half = n / 2;
    let mut a = tubules("neu03", half, AXON, seed ^ 0x0EE1);
    let b = tubules("neu03", n - half, DENDRITE, seed ^ 0x0EE2);
    a.boxes.extend(b.boxes);
    a
}

fn random_unit(rng: &mut StdRng) -> [f64; 3] {
    loop {
        let v = [
            rng.gen_range(-1.0f64..1.0),
            rng.gen_range(-1.0f64..1.0),
            rng.gen_range(-1.0f64..1.0),
        ];
        let norm2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        if norm2 > 1e-6 && norm2 <= 1.0 {
            let norm = norm2.sqrt();
            return [v[0] / norm, v[1] / norm, v[2] / norm];
        }
    }
}

fn normalize(v: &mut [f64; 3]) {
    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if norm > 1e-12 {
        for c in v.iter_mut() {
            *c /= norm;
        }
    } else {
        *v = [1.0, 0.0, 0.0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_integrity() {
        for d in [axons(3_000, 1), dendrites(3_000, 1), neurites(3_000, 1)] {
            assert_eq!(d.len(), 3_000, "{}", d.name);
            d.check_integrity();
        }
    }

    #[test]
    fn leaf_groups_are_mostly_dead_space() {
        // The defining property the paper measures (Figure 1b: ≈94 % dead
        // space for axo03): grouping spatially adjacent segments — as an
        // R-tree leaf would — yields MBBs that are almost entirely empty,
        // because thin oriented tubes cannot fill an axis-aligned box.
        let d = axons(2_000, 2);
        let mut dead_sum = 0.0;
        let mut groups = 0;
        for chunk in d.boxes.chunks(50) {
            let mbb = Rect::mbb_of(chunk).unwrap();
            if mbb.volume() <= 0.0 {
                continue;
            }
            dead_sum += cbb_geom::dead_space_fraction(&mbb, chunk);
            groups += 1;
        }
        let avg = dead_sum / groups as f64;
        assert!(
            avg > 0.7,
            "axon leaf groups should be mostly dead space, got {avg:.3}"
        );
    }

    #[test]
    fn axons_longer_than_dendrites() {
        let a = axons(4_000, 3);
        let d = dendrites(4_000, 3);
        let mean_max_extent = |ds: &Dataset<3>| {
            ds.boxes
                .iter()
                .map(|b| (0..3).map(|i| b.extent(i)).fold(0.0, f64::max))
                .sum::<f64>()
                / ds.len() as f64
        };
        assert!(mean_max_extent(&a) > mean_max_extent(&d));
    }

    #[test]
    fn walks_are_spatially_coherent() {
        // Consecutive segments of a walk must be adjacent: the distance
        // between consecutive box centers is bounded by segment length +
        // radii (for segments from the same walk — sample the first walk).
        let d = axons(150, 4);
        let mut adjacent = 0;
        for w in d.boxes.windows(2).take(100) {
            if w[0].center().distance(&w[1].center()) < 2.0 * (AXON.seg_len.1 + AXON.radius.1) {
                adjacent += 1;
            }
        }
        assert!(adjacent > 80, "walk coherence broken: {adjacent}/100");
    }

    #[test]
    fn deterministic() {
        assert_eq!(axons(200, 5).boxes, axons(200, 5).boxes);
        assert_eq!(neurites(200, 5).boxes, neurites(200, 5).boxes);
    }
}
