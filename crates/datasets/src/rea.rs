//! `rea02` / `rea03` stand-ins.
//!
//! * `rea02` — California street segments: thin axis-aligned boxes laid out
//!   in urban grid clusters plus randomly oriented rural segments (whose
//!   MBBs are thin but tilted), with a small share of point objects. The
//!   property the paper leans on: streets "wrap around" dead space in grid
//!   patterns, making corner clipping *hardest* among the datasets.
//! * `rea03` — 11.9 M points of three floating-point attributes from a
//!   biological file: modelled as skewed, correlated Gaussian clusters of
//!   pure points (zero-volume boxes ⇒ leaf MBBs are ~100 % dead space).

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// rea02 domain: ~600 km square (California-ish, meters).
const REA02_DOMAIN: f64 = 600_000.0;

/// Number of urban grid clusters.
const CITIES: usize = 40;

/// Generate the `rea02` street-segment stand-in with `n` objects.
pub fn streets2d(n: usize, seed: u64) -> Dataset<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = Rect::new(Point::splat(0.0), Point::splat(REA02_DOMAIN));

    // City centers and radii (log-normal-ish population spread).
    let cities: Vec<(f64, f64, f64)> = (0..CITIES)
        .map(|_| {
            let cx = rng.gen_range(0.05 * REA02_DOMAIN..0.95 * REA02_DOMAIN);
            let cy = rng.gen_range(0.05 * REA02_DOMAIN..0.95 * REA02_DOMAIN);
            let radius = rng.gen_range(2_000.0..15_000.0);
            (cx, cy, radius)
        })
        .collect();

    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let style = rng.gen_range(0.0..1.0);
        let b = if style < 0.70 {
            // Urban grid street: axis-aligned thin box near a city center.
            let (cx, cy, radius) = cities[rng.gen_range(0..CITIES)];
            let gx = cx + rng.gen_range(-1.0f64..1.0) * radius;
            let gy = cy + rng.gen_range(-1.0f64..1.0) * radius;
            let len = rng.gen_range(40.0..250.0);
            let width = rng.gen_range(0.0..12.0);
            if rng.gen_bool(0.5) {
                rect_clamped(gx, gy, len, width, REA02_DOMAIN)
            } else {
                rect_clamped(gx, gy, width, len, REA02_DOMAIN)
            }
        } else if style < 0.95 {
            // Rural road: a tilted segment — its MBB extent depends on the
            // orientation angle.
            let x = rng.gen_range(0.0..REA02_DOMAIN);
            let y = rng.gen_range(0.0..REA02_DOMAIN);
            let len = rng.gen_range(100.0..2_000.0);
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
            rect_clamped(
                x,
                y,
                len * theta.cos().abs(),
                len * theta.sin().abs(),
                REA02_DOMAIN,
            )
        } else {
            // Point of interest (the dataset contains points too).
            let x = rng.gen_range(0.0..REA02_DOMAIN);
            let y = rng.gen_range(0.0..REA02_DOMAIN);
            Rect::point(Point([x, y]))
        };
        boxes.push(b);
    }
    Dataset {
        name: "rea02".into(),
        boxes,
        domain,
    }
}

fn rect_clamped(cx: f64, cy: f64, w: f64, h: f64, domain: f64) -> Rect<2> {
    let lo = Point([
        (cx - w / 2.0).clamp(0.0, domain),
        (cy - h / 2.0).clamp(0.0, domain),
    ]);
    let hi = Point([
        (cx + w / 2.0).clamp(0.0, domain),
        (cy + h / 2.0).clamp(0.0, domain),
    ]);
    Rect::new(lo, hi)
}

/// rea03 domain: unit-ish attribute space scaled to 1e4.
const REA03_DOMAIN: f64 = 10_000.0;

/// Number of attribute clusters.
const CLUSTERS: usize = 24;

/// Generate the `rea03` 3-attribute point stand-in with `n` points.
pub fn points3d(n: usize, seed: u64) -> Dataset<3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = Rect::new(Point::splat(0.0), Point::splat(REA03_DOMAIN));

    // Cluster means, per-axis spreads and correlation shear.
    let clusters: Vec<([f64; 3], [f64; 3], f64)> = (0..CLUSTERS)
        .map(|_| {
            let mean = [
                rng.gen_range(0.1 * REA03_DOMAIN..0.9 * REA03_DOMAIN),
                rng.gen_range(0.1 * REA03_DOMAIN..0.9 * REA03_DOMAIN),
                rng.gen_range(0.1 * REA03_DOMAIN..0.9 * REA03_DOMAIN),
            ];
            let spread = [
                rng.gen_range(20.0..600.0),
                rng.gen_range(20.0..600.0),
                rng.gen_range(20.0..600.0),
            ];
            let shear = rng.gen_range(-0.8f64..0.8);
            (mean, spread, shear)
        })
        .collect();

    // Skewed cluster weights (Zipf-ish): attribute files are heavily
    // concentrated.
    let weights: Vec<f64> = (1..=CLUSTERS).map(|i| 1.0 / i as f64).collect();
    let total_weight: f64 = weights.iter().sum();

    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut ci = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                ci = i;
                break;
            }
            pick -= w;
        }
        let (mean, spread, shear) = clusters[ci];
        let gauss = |rng: &mut StdRng| -> f64 {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let g0 = gauss(&mut rng);
        let g1 = gauss(&mut rng);
        let g2 = gauss(&mut rng);
        let p = Point([
            (mean[0] + spread[0] * g0).clamp(0.0, REA03_DOMAIN),
            // Correlate attribute 1 with attribute 0 via the shear.
            (mean[1] + spread[1] * (shear * g0 + (1.0 - shear.abs()) * g1))
                .clamp(0.0, REA03_DOMAIN),
            (mean[2] + spread[2] * g2).clamp(0.0, REA03_DOMAIN),
        ]);
        boxes.push(Rect::point(p));
    }
    Dataset {
        name: "rea03".into(),
        boxes,
        domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rea02_objects_are_thin() {
        let d = streets2d(5_000, 2);
        assert_eq!(d.len(), 5_000);
        d.check_integrity();
        // Street segments: the median shorter side is tiny relative to the
        // median longer side.
        let mut shorter: Vec<f64> = Vec::new();
        let mut longer: Vec<f64> = Vec::new();
        for b in &d.boxes {
            let (w, h) = (b.extent(0), b.extent(1));
            shorter.push(w.min(h));
            longer.push(w.max(h));
        }
        shorter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        longer.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(shorter[shorter.len() / 2] < 20.0);
        assert!(longer[longer.len() / 2] > 30.0);
    }

    #[test]
    fn rea02_contains_points_and_is_clustered() {
        let d = streets2d(10_000, 4);
        let points = d.boxes.iter().filter(|b| b.volume() == 0.0).count();
        assert!(points > 100, "expected some degenerate objects: {points}");
        // Clustering: a random 10 km disk around a dense area should hold
        // far more than the uniform share. Use the densest cell of a
        // coarse grid as a proxy.
        let mut grid = [0u32; 36];
        for b in &d.boxes {
            let c = b.center();
            let gx = (c[0] / REA02_DOMAIN * 6.0).min(5.0) as usize;
            let gy = (c[1] / REA02_DOMAIN * 6.0).min(5.0) as usize;
            grid[gy * 6 + gx] += 1;
        }
        let max = *grid.iter().max().unwrap() as f64;
        let uniform_share = d.len() as f64 / 36.0;
        assert!(max > 1.5 * uniform_share, "no clustering detected");
    }

    #[test]
    fn rea03_is_pure_points() {
        let d = points3d(5_000, 9);
        assert_eq!(d.len(), 5_000);
        d.check_integrity();
        assert!(d.boxes.iter().all(|b| b.volume() == 0.0));
        assert!(d.boxes.iter().all(|b| b.lo == b.hi));
    }

    #[test]
    fn rea03_is_skewed() {
        let d = points3d(20_000, 11);
        // Coarse 3-d grid: the densest cell must hold far more than the
        // uniform share (cluster skew).
        let mut grid = vec![0u32; 4 * 4 * 4];
        for b in &d.boxes {
            let c = b.center();
            let i = |v: f64| ((v / REA03_DOMAIN) * 4.0).min(3.0) as usize;
            grid[i(c[0]) * 16 + i(c[1]) * 4 + i(c[2])] += 1;
        }
        let max = *grid.iter().max().unwrap() as f64;
        assert!(max > 4.0 * (d.len() as f64 / 64.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(streets2d(500, 3).boxes, streets2d(500, 3).boxes);
        assert_eq!(points3d(500, 3).boxes, points3d(500, 3).boxes);
    }
}
