//! Query-workload generator (paper §V-B, after the benchmark of \[33\]).
//!
//! "Given dataset D and number of result objects |R| as input, the
//! generator produces queries originating from the dithered centers of the
//! objects in D. |R| object centers are chosen randomly so that the most
//! dense data regions are also most actively queried."
//!
//! Query extent is *calibrated* per dataset and profile: a binary search
//! over the hypercube half-extent drives the mean result count of probe
//! queries to the profile target (≈1 / ≈10 / ≈100 — QR0 / QR1 / QR2).

use cbb_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// The three selectivity profiles of §V-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryProfile {
    /// Label used in figures ("QR0" …).
    pub name: &'static str,
    /// Approximate objects returned per query.
    pub target_results: usize,
}

impl QueryProfile {
    /// ≈1 result per query (high selectivity).
    pub const QR0: QueryProfile = QueryProfile {
        name: "QR0",
        target_results: 1,
    };
    /// ≈10 results per query (medium selectivity).
    pub const QR1: QueryProfile = QueryProfile {
        name: "QR1",
        target_results: 10,
    };
    /// ≈100 results per query (low selectivity).
    pub const QR2: QueryProfile = QueryProfile {
        name: "QR2",
        target_results: 100,
    };

    /// All three profiles in paper order.
    pub const ALL: [QueryProfile; 3] = [Self::QR0, Self::QR1, Self::QR2];
}

/// A query box of half-extent `h` centred at a dithered object center.
fn query_at<const D: usize>(dataset: &Dataset<D>, rng: &mut StdRng, h: f64) -> Rect<D> {
    let obj = &dataset.boxes[rng.gen_range(0..dataset.len())];
    let c = obj.center();
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for i in 0..D {
        // Dither: shift the center by up to ±h so queries don't always
        // score their seed object.
        let dither = rng.gen_range(-h..=h);
        let center = c[i] + dither;
        lo[i] = center - h;
        hi[i] = center + h;
    }
    Rect::new(Point(lo), Point(hi))
}

/// Calibrate the hypercube half-extent so `count_fn` (results per query)
/// averages `target` over `probes` sampled queries.
fn calibrate_extent<const D: usize>(
    dataset: &Dataset<D>,
    count_fn: &mut dyn FnMut(&Rect<D>) -> usize,
    target: f64,
    seed: u64,
) -> f64 {
    let probes = 24;
    let max_h = (0..D)
        .map(|i| dataset.domain.extent(i))
        .fold(f64::INFINITY, f64::min)
        / 2.0;
    let mut lo = 1e-9 * max_h;
    let mut hi = max_h;
    for _ in 0..22 {
        let mid = (lo * hi).sqrt(); // geometric midpoint: extents span decades
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA11);
        let mean = (0..probes)
            .map(|_| count_fn(&query_at(dataset, &mut rng, mid)))
            .sum::<usize>() as f64
            / probes as f64;
        if mean < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Generate `count` queries for `profile`, calibrated against `count_fn`
/// (typically an index-backed result counter; brute force works too).
pub fn generate_queries<const D: usize>(
    dataset: &Dataset<D>,
    profile: QueryProfile,
    count: usize,
    seed: u64,
    count_fn: &mut dyn FnMut(&Rect<D>) -> usize,
) -> Vec<Rect<D>> {
    assert!(!dataset.is_empty(), "cannot query an empty dataset");
    let h = calibrate_extent(dataset, count_fn, profile.target_results as f64, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| query_at(dataset, &mut rng, h)).collect()
}

/// Brute-force result counter for use as `count_fn` on small datasets.
pub fn brute_force_counter<const D: usize>(
    boxes: &[Rect<D>],
) -> impl FnMut(&Rect<D>) -> usize + '_ {
    move |q: &Rect<D>| boxes.iter().filter(|b| b.intersects(q)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;

    #[test]
    fn calibration_hits_selectivity_targets() {
        let d = par::generate::<2>(20_000, 42);
        for profile in QueryProfile::ALL {
            let mut counter = brute_force_counter(&d.boxes);
            let queries = generate_queries(&d, profile, 200, 7, &mut counter);
            assert_eq!(queries.len(), 200);
            let mean = queries
                .iter()
                .map(|q| d.boxes.iter().filter(|b| b.intersects(q)).count())
                .sum::<usize>() as f64
                / queries.len() as f64;
            let target = profile.target_results as f64;
            assert!(
                mean > target * 0.3 && mean < target * 3.5,
                "{}: mean {mean} vs target {target}",
                profile.name
            );
        }
    }

    #[test]
    fn queries_are_squares_following_density() {
        let d = par::generate::<2>(5_000, 1);
        let mut counter = brute_force_counter(&d.boxes);
        let queries = generate_queries(&d, QueryProfile::QR1, 100, 3, &mut counter);
        for q in &queries {
            assert!(
                (q.extent(0) - q.extent(1)).abs() < 1e-9,
                "hypercube queries"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = par::generate::<2>(3_000, 2);
        let a = {
            let mut c = brute_force_counter(&d.boxes);
            generate_queries(&d, QueryProfile::QR0, 50, 9, &mut c)
        };
        let b = {
            let mut c = brute_force_counter(&d.boxes);
            generate_queries(&d, QueryProfile::QR0, 50, 9, &mut c)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_order_extents() {
        // Lower selectivity (more results) must need larger queries.
        let d = par::generate::<2>(10_000, 5);
        let ext = |profile| {
            let mut c = brute_force_counter(&d.boxes);
            generate_queries(&d, profile, 10, 11, &mut c)[0].extent(0)
        };
        let e0 = ext(QueryProfile::QR0);
        let e1 = ext(QueryProfile::QR1);
        let e2 = ext(QueryProfile::QR2);
        assert!(e0 < e1 && e1 < e2, "extents {e0} {e1} {e2}");
    }
}
