//! Multi-layer catalog workloads: several **named** datasets over one
//! shared domain, each with its own spatial character.
//!
//! Production spatial catalogs (SATO-style — Aji et al., *Effective
//! Spatial Data Partitioning for Scalable Query Processing*) hold many
//! layers side by side: roads, buildings, points of interest — drawn
//! from *different* distributions but co-located, because cross-layer
//! joins ("which POIs touch which roads") are the workload that
//! matters. [`layers`] generates that shape deterministically: every
//! layer shares the `1 000 000`-unit domain and, for the clustered
//! kinds, a common blob layout (`layout_seed`), so the layers overlap
//! where real layers overlap — in the cities — and cross-layer joins
//! produce pairs instead of near-disjoint noise.

use crate::dataset::Dataset;
use crate::skew::{clustered_with_layout, zipfian};

/// The spatial character of one catalog layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LayerKind {
    /// Zipf-populated blobs over a sparse background
    /// ([`clustered_with_layout`]); blob centres come from the shared
    /// layout seed, so every clustered layer clusters in the *same*
    /// places.
    Clustered {
        /// Number of blobs.
        clusters: usize,
        /// Blob half-width.
        spread: f64,
        /// Uniform background fraction (0..1).
        background: f64,
    },
    /// Smooth heavy-tailed density without distinct blobs
    /// ([`zipfian`]).
    Zipfian {
        /// Zipf-ranked cells per axis.
        cells: usize,
    },
}

/// One layer request: its catalog name, distribution, and size.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSpec {
    /// The name the layer will be served under.
    pub name: &'static str,
    /// Its distribution.
    pub kind: LayerKind,
    /// Objects to generate.
    pub n: usize,
}

impl LayerSpec {
    /// A clustered layer with the bench-default blob shape.
    pub fn clustered(name: &'static str, n: usize) -> Self {
        LayerSpec {
            name,
            kind: LayerKind::Clustered {
                clusters: 6,
                spread: 30_000.0,
                background: 0.15,
            },
            n,
        }
    }

    /// A Zipfian layer with the bench-default cell count.
    pub fn zipfian(name: &'static str, n: usize) -> Self {
        LayerSpec {
            name,
            kind: LayerKind::Zipfian { cells: 8 },
            n,
        }
    }
}

/// One generated catalog layer: the name to register it under and its
/// objects.
#[derive(Clone, Debug)]
pub struct NamedLayer<const D: usize> {
    /// Catalog name.
    pub name: &'static str,
    /// The layer's objects and shared domain.
    pub dataset: Dataset<D>,
}

/// Generate every requested layer over one shared domain. Clustered
/// layers share `layout_seed` (same blob centres — co-located layers),
/// while each layer's object draws are seeded independently
/// (`seed ^ index`), so layers are correlated in *place* but not in
/// *content*. Deterministic per `(specs, layout_seed, seed)`.
pub fn layers<const D: usize>(
    specs: &[LayerSpec],
    layout_seed: u64,
    seed: u64,
) -> Vec<NamedLayer<D>> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let layer_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut dataset = match spec.kind {
                LayerKind::Clustered {
                    clusters,
                    spread,
                    background,
                } => clustered_with_layout::<D>(
                    spec.n,
                    clusters,
                    spread,
                    background,
                    layout_seed,
                    layer_seed,
                ),
                LayerKind::Zipfian { cells } => zipfian::<D>(spec.n, cells, layer_seed),
            };
            dataset.name = spec.name.to_string();
            NamedLayer {
                name: spec.name,
                dataset,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_deterministic_named_and_share_the_domain() {
        let specs = [
            LayerSpec::clustered("roads", 500),
            LayerSpec::clustered("pois", 300),
            LayerSpec::zipfian("sensors", 400),
        ];
        let a = layers::<2>(&specs, 7, 42);
        let b = layers::<2>(&specs, 7, 42);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dataset.boxes, y.dataset.boxes, "deterministic per seed");
        }
        assert_eq!(a[0].dataset.name, "roads");
        assert_eq!(a[0].dataset.boxes.len(), 500);
        assert_eq!(a[2].dataset.boxes.len(), 400);
        // Shared domain across layers.
        assert_eq!(a[0].dataset.domain, a[1].dataset.domain);
        assert_eq!(a[0].dataset.domain, a[2].dataset.domain);
        // Different content per layer despite the shared layout.
        assert_ne!(a[0].dataset.boxes[..100], a[1].dataset.boxes[..100]);
    }

    #[test]
    fn clustered_layers_colocate_for_cross_layer_joins() {
        // Same layout seed ⇒ blobs in the same places ⇒ a cross-layer
        // join finds pairs far beyond what independent scatter would.
        let specs = [
            LayerSpec::clustered("a", 800),
            LayerSpec::clustered("b", 800),
        ];
        let l = layers::<2>(&specs, 5, 1);
        let pairs = cbb_joins::brute_force_pairs(&l[0].dataset.boxes, &l[1].dataset.boxes);
        assert!(
            pairs > 0,
            "co-located clustered layers must intersect somewhere"
        );
        // A different object seed keeps the layout: still co-located.
        let m = layers::<2>(&specs, 5, 2);
        assert_ne!(l[0].dataset.boxes, m[0].dataset.boxes);
    }
}
