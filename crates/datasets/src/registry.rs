//! Dataset registry: the paper's seven datasets at configurable scale.

use crate::dataset::Dataset;
use crate::{neuro, par, rea};

/// Scale factor relative to paper-size datasets. The default `1/16` keeps
/// every experiment minutes-scale on a laptop; `--full` harness runs use
/// [`Scale::Paper`]. Result *shapes* are stable across scales (checked at
/// 1/64, 1/16 and 1/4 during development).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-size object counts.
    Paper,
    /// Paper counts divided by `n`.
    Fraction(u32),
    /// Explicit object count (same for every dataset).
    Exact(usize),
}

impl Scale {
    /// Default experiment scale (1/16 of the paper counts).
    pub const DEFAULT: Scale = Scale::Fraction(16);

    fn apply(self, paper_count: usize) -> usize {
        match self {
            Scale::Paper => paper_count,
            Scale::Fraction(n) => (paper_count / n as usize).max(1_000),
            Scale::Exact(n) => n,
        }
    }
}

/// The 2-d datasets of §V-B with their paper object counts.
pub const DATASETS_2D: [(&str, usize); 2] = [("par02", 1_048_576), ("rea02", 1_888_012)];

/// The 3-d datasets of §V-B with their paper object counts.
pub const DATASETS_3D: [(&str, usize); 5] = [
    ("par03", 1_048_576),
    ("rea03", 11_958_999),
    ("axo03", 2_570_016),
    ("den03", 1_288_251),
    ("neu03", 3_858_267),
];

/// Base RNG seed: all experiments derive their dataset from this.
pub const BASE_SEED: u64 = 0xCBB_2018;

/// Instantiate a 2-d dataset by benchmark name.
///
/// Subsampled instantiations (any scale below the paper count) are
/// *densified* back to the paper's spatial density
/// ([`Dataset::densified`]): object density — not absolute coordinates —
/// drives node occupancy, dead-space geometry and join selectivity, and
/// is what makes results shape-stable across scales.
pub fn dataset2(name: &str, scale: Scale) -> Dataset<2> {
    let paper = DATASETS_2D
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown 2-d dataset {name}"))
        .1;
    let n = scale.apply(paper);
    let d = match name {
        "par02" => par::generate::<2>(n, BASE_SEED),
        "rea02" => rea::streets2d(n, BASE_SEED),
        _ => unreachable!(),
    };
    let f = d.density_restoring_factor(paper);
    d.densified(f)
}

/// Instantiate a 3-d dataset by benchmark name (density-restored like
/// [`dataset2`]).
pub fn dataset3(name: &str, scale: Scale) -> Dataset<3> {
    let paper = DATASETS_3D
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown 3-d dataset {name}"))
        .1;
    let n = scale.apply(paper);
    let d = match name {
        "par03" => par::generate::<3>(n, BASE_SEED),
        "rea03" => rea::points3d(n, BASE_SEED),
        "axo03" => neuro::axons(n, BASE_SEED),
        "den03" => neuro::dendrites(n, BASE_SEED),
        "neu03" => neuro::neurites(n, BASE_SEED),
        _ => unreachable!(),
    };
    let f = d.density_restoring_factor(paper);
    d.densified(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        assert_eq!(Scale::Paper.apply(1_000_000), 1_000_000);
        assert_eq!(Scale::Fraction(16).apply(1_600_000), 100_000);
        assert_eq!(Scale::Fraction(1000).apply(100_000), 1_000); // floor
        assert_eq!(Scale::Exact(777).apply(123), 777);
    }

    #[test]
    fn all_datasets_instantiate_small() {
        for (name, _) in DATASETS_2D {
            let d = dataset2(name, Scale::Exact(2_000));
            assert_eq!(d.len(), 2_000);
            assert_eq!(d.name, name);
            d.check_integrity();
        }
        for (name, _) in DATASETS_3D {
            let d = dataset3(name, Scale::Exact(2_000));
            assert_eq!(d.len(), 2_000);
            assert_eq!(d.name, name);
            d.check_integrity();
        }
    }

    #[test]
    #[should_panic(expected = "unknown 2-d dataset")]
    fn unknown_name_panics() {
        let _ = dataset2("nope", Scale::DEFAULT);
    }
}
