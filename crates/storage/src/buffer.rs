//! LRU buffer pool with hit/miss accounting.

use std::collections::HashMap;

use cbb_rtree::config::PAGE_SIZE;

use crate::pagestore::PageStore;

/// Pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that had to read the backend (page faults).
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// A fixed-capacity LRU buffer pool over some [`PageStore`].
///
/// Read-only workloads only (the experiments build first, then query), so
/// eviction never writes back.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page id → frame index.
    map: HashMap<u32, usize>,
    /// Frame payloads.
    frames: Vec<Box<[u8]>>,
    /// Frame → page id.
    owners: Vec<u32>,
    /// LRU clock: per frame, last touch tick.
    last_used: Vec<u64>,
    tick: u64,
    /// Statistics.
    pub stats: PoolStats,
}

impl BufferPool {
    /// Pool holding up to `capacity` pages (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity),
            owners: Vec::with_capacity(capacity),
            last_used: Vec::with_capacity(capacity),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetch page `id`, reading through to `store` on a miss. Returns the
    /// page bytes.
    pub fn get<'a>(&'a mut self, store: &mut dyn PageStore, id: u32) -> &'a [u8] {
        self.tick += 1;
        if let Some(&frame) = self.map.get(&id) {
            self.stats.hits += 1;
            self.last_used[frame] = self.tick;
            return &self.frames[frame];
        }
        self.stats.misses += 1;
        let frame = if self.frames.len() < self.capacity {
            self.frames.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
            self.owners.push(id);
            self.last_used.push(self.tick);
            self.frames.len() - 1
        } else {
            // Evict the least recently used frame.
            let victim = (0..self.frames.len())
                .min_by_key(|&i| self.last_used[i])
                .expect("non-empty pool");
            self.stats.evictions += 1;
            self.map.remove(&self.owners[victim]);
            self.owners[victim] = id;
            self.last_used[victim] = self.tick;
            victim
        };
        store.read_page(id, &mut self.frames[frame]);
        self.map.insert(id, frame);
        &self.frames[frame]
    }

    /// Drop all cached pages (cold-cache experiment resets).
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.owners.clear();
        self.last_used.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;

    fn store_with_pages(n: u32) -> MemPageStore {
        let mut s = MemPageStore::new();
        for i in 0..n {
            s.write_page(i, &vec![i as u8; PAGE_SIZE]);
        }
        s
    }

    #[test]
    fn hits_and_misses() {
        let mut store = store_with_pages(4);
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.get(&mut store, 0)[0], 0);
        assert_eq!(pool.get(&mut store, 0)[0], 0); // hit
        assert_eq!(pool.stats.hits, 1);
        assert_eq!(pool.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut store = store_with_pages(4);
        let mut pool = BufferPool::new(2);
        pool.get(&mut store, 0);
        pool.get(&mut store, 1);
        pool.get(&mut store, 0); // refresh 0 → LRU victim is 1
        pool.get(&mut store, 2); // evicts 1
        assert_eq!(pool.stats.evictions, 1);
        // 0 still cached, 1 gone.
        let before = pool.stats.misses;
        pool.get(&mut store, 0);
        assert_eq!(pool.stats.misses, before);
        pool.get(&mut store, 1);
        assert_eq!(pool.stats.misses, before + 1);
    }

    #[test]
    fn single_frame_pool() {
        let mut store = store_with_pages(3);
        let mut pool = BufferPool::new(1);
        for id in [0u32, 1, 2, 0, 1, 2] {
            assert_eq!(pool.get(&mut store, id)[0], id as u8);
        }
        assert_eq!(pool.stats.hits, 0);
        assert_eq!(pool.stats.misses, 6);
    }

    #[test]
    fn clear_resets_contents() {
        let mut store = store_with_pages(2);
        let mut pool = BufferPool::new(2);
        pool.get(&mut store, 0);
        pool.clear();
        let misses = pool.stats.misses;
        pool.get(&mut store, 0);
        assert_eq!(pool.stats.misses, misses + 1);
    }
}
