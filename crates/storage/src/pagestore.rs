//! Page-granular storage backends with I/O accounting.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use cbb_rtree::config::PAGE_SIZE;

/// Counters shared by all backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Pages read from the backend.
    pub reads: u64,
    /// Pages written to the backend.
    pub writes: u64,
}

/// A page-addressable store.
pub trait PageStore {
    /// Read page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&mut self, id: u32, buf: &mut [u8]);
    /// Write page `id` from `buf`.
    fn write_page(&mut self, id: u32, buf: &[u8]);
    /// Number of pages the store holds.
    fn page_count(&self) -> u32;
    /// I/O counters so far.
    fn counters(&self) -> IoCounters;
}

/// In-memory page store (tests; deterministic "disk").
#[derive(Debug, Default)]
pub struct MemPageStore {
    pages: Vec<Box<[u8]>>,
    counters: IoCounters,
}

impl MemPageStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemPageStore {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) {
        self.counters.reads += 1;
        buf.copy_from_slice(&self.pages[id as usize]);
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) {
        self.counters.writes += 1;
        let idx = id as usize;
        if self.pages.len() <= idx {
            self.pages
                .resize_with(idx + 1, || vec![0u8; PAGE_SIZE].into_boxed_slice());
        }
        self.pages[idx].copy_from_slice(buf);
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }
}

/// File-backed page store (the real-disk backend for the scalability
/// experiment).
#[derive(Debug)]
pub struct FilePageStore {
    file: File,
    pages: u32,
    counters: IoCounters,
}

impl FilePageStore {
    /// Create (truncating) a page file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file,
            pages: 0,
            counters: IoCounters::default(),
        })
    }

    /// Open an existing page file at `path` (snapshot recovery). The
    /// page count is derived from the file length, rounding down: a
    /// trailing partial page from a torn write is not addressable.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let pages = (file.metadata()?.len() / PAGE_SIZE as u64) as u32;
        Ok(FilePageStore {
            file,
            pages,
            counters: IoCounters::default(),
        })
    }

    /// Flush written pages to stable storage (fdatasync).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

impl PageStore for FilePageStore {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) {
        self.counters.reads += 1;
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .expect("seek");
        self.file.read_exact(buf).expect("page read");
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) {
        self.counters.writes += 1;
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .expect("seek");
        self.file.write_all(buf).expect("page write");
        self.pages = self.pages.max(id + 1);
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &mut dyn PageStore) {
        let page_a = vec![0xABu8; PAGE_SIZE];
        let page_b = vec![0x17u8; PAGE_SIZE];
        store.write_page(0, &page_a);
        store.write_page(3, &page_b);
        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(0, &mut buf);
        assert_eq!(buf, page_a);
        store.read_page(3, &mut buf);
        assert_eq!(buf, page_b);
        assert!(store.page_count() >= 4);
        let c = store.counters();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 2);
    }

    #[test]
    fn mem_store_roundtrip() {
        roundtrip(&mut MemPageStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("cbb_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        roundtrip(&mut FilePageStore::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
