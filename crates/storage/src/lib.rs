//! # cbb-storage — paged storage engine for disk-resident clipped R-trees
//!
//! The paper's index is a disk structure: 4 KiB pages holding one node
//! each (Figure 4a) plus a small auxiliary clip-point table that — like
//! the directory levels — stays memory-resident (Figure 4b, §V "internal
//! nodes and clip points can generally be memory-resident").
//!
//! This crate provides:
//!
//! * [`codec`] — byte-exact node (de)serialization in the Figure 4a
//!   layout, and the Figure 4b clip-table encoding;
//! * [`pagestore`] — page-granular storage backends (a real file and an
//!   in-memory store) with read/write counters;
//! * [`buffer`] — an LRU buffer pool with hit/miss accounting;
//! * [`disk_tree`] — a disk-resident (clipped) R-tree executing range
//!   queries through the pool: the Figure 15 scalability substrate;
//! * [`layout`] — the Figure 13 storage-breakdown accounting;
//! * [`wal`] — a checksummed, length-prefixed write-ahead log with a
//!   torn-tail-truncating recovery scanner (the serve layer logs one
//!   record per coalesced update batch);
//! * [`fault`] — crash/corruption test doubles ([`FaultyLog`],
//!   [`FaultyPageStore`]) so recovery's failure paths stay exercised.

pub mod buffer;
pub mod codec;
pub mod disk_tree;
pub mod fault;
pub mod layout;
pub mod pagestore;
pub mod wal;

pub use buffer::BufferPool;
pub use disk_tree::DiskRTree;
pub use fault::{FaultyLog, FaultyPageStore};
pub use layout::{storage_breakdown, StorageBreakdown};
pub use pagestore::{FilePageStore, MemPageStore, PageStore};
pub use wal::{crc32, read_wal, recover_wal, WalRecovery, WalWriter, MAX_WAL_RECORD, WAL_MAGIC};
