//! Disk-resident (clipped) R-tree: nodes live in a page store and every
//! traversal goes through the buffer pool. This is the Figure 15
//! substrate: query performance when the index greatly exceeds memory.

use cbb_core::{query_intersects_cbb, ClipPoint};
use cbb_geom::Rect;
use cbb_rtree::{Child, ClippedRTree, DataId, Node, NodeId};

use crate::buffer::BufferPool;
use crate::codec::{decode_node, encode_node};
use crate::pagestore::PageStore;

/// Query-time I/O summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskQueryStats {
    /// Pages requested (node visits).
    pub page_requests: u64,
    /// Pool misses — actual reads from the store.
    pub page_faults: u64,
    /// Result objects.
    pub results: u64,
    /// Recursions avoided by clip points.
    pub clip_prunes: u64,
}

/// A read-only disk-resident clipped R-tree.
///
/// Node pages are remapped to dense page ids on persist; the clip table
/// (and nothing else) stays in memory, mirroring the paper's deployment
/// assumption.
pub struct DiskRTree<const D: usize> {
    root: u32,
    len: usize,
    /// In-memory auxiliary structure: clip points per page id.
    clips: Vec<Vec<ClipPoint<D>>>,
    pool: BufferPool,
}

impl<const D: usize> DiskRTree<D> {
    /// Persist a clipped tree into `store`; queries run through a pool of
    /// `pool_pages` frames.
    pub fn persist(source: &ClippedRTree<D>, store: &mut dyn PageStore, pool_pages: usize) -> Self {
        // Dense page-id remapping of live nodes.
        let live: Vec<NodeId> = source.tree.iter_nodes().map(|(id, _)| id).collect();
        let mut remap = std::collections::HashMap::with_capacity(live.len());
        for (page, id) in live.iter().enumerate() {
            remap.insert(*id, page as u32);
        }

        let mut clips: Vec<Vec<ClipPoint<D>>> = vec![Vec::new(); live.len()];
        for (page, id) in live.iter().enumerate() {
            let node = source.tree.node(*id);
            // Rewrite child pointers to page ids.
            let mut copy: Node<D> = node.clone();
            for e in copy.entries.iter_mut() {
                if let Child::Node(c) = e.child {
                    e.child = Child::Node(NodeId(remap[&c]));
                }
            }
            store.write_page(page as u32, &encode_node(&copy));
            clips[page] = source.clips_of(*id).to_vec();
        }

        DiskRTree {
            root: remap[&source.tree.root_id()],
            len: source.tree.len(),
            clips,
            pool: BufferPool::new(pool_pages),
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all buffered pages (cold-start measurement).
    pub fn drop_caches(&mut self) {
        self.pool.clear();
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> crate::buffer::PoolStats {
        self.pool.stats
    }

    /// Range query through the buffer pool. `use_clips` toggles the
    /// Algorithm 2 tests (the unclipped baseline runs on the same pages).
    pub fn range_query(
        &mut self,
        store: &mut dyn PageStore,
        q: &Rect<D>,
        use_clips: bool,
    ) -> (Vec<DataId>, DiskQueryStats) {
        let mut stats = DiskQueryStats::default();
        let mut out = Vec::new();
        if self.len == 0 {
            return (out, stats);
        }
        // Explicit stack of page ids to visit (already CBB-tested).
        let mut stack: Vec<u32> = Vec::new();
        let root_node = self.fetch(store, self.root, &mut stats);
        let root_mbb = root_node.mbb;
        drop(root_node);
        if root_mbb.intersects(q)
            && (!use_clips || query_intersects_cbb(&root_mbb, &self.clips[self.root as usize], q))
        {
            stack.push(self.root);
        }
        while let Some(page) = stack.pop() {
            let node: Node<D> = self.fetch(store, page, &mut stats);
            if node.level == 0 {
                for e in &node.entries {
                    if e.mbb.intersects(q) {
                        out.push(e.child.data_id());
                        stats.results += 1;
                    }
                }
                continue;
            }
            for e in &node.entries {
                if !e.mbb.intersects(q) {
                    continue;
                }
                let child = match e.child {
                    Child::Node(NodeId(p)) => p,
                    Child::Data(_) => unreachable!("directory with data entry"),
                };
                if use_clips && !query_intersects_cbb(&e.mbb, &self.clips[child as usize], q) {
                    stats.clip_prunes += 1;
                    continue;
                }
                stack.push(child);
            }
        }
        (out, stats)
    }

    fn fetch(
        &mut self,
        store: &mut dyn PageStore,
        page: u32,
        stats: &mut DiskQueryStats,
    ) -> Node<D> {
        stats.page_requests += 1;
        let misses_before = self.pool.stats.misses;
        let buf = self.pool.get(store, page);
        let node = decode_node(buf);
        if self.pool.stats.misses > misses_before {
            stats.page_faults += 1;
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{RTree, TreeConfig, Variant};

    fn build(n: usize) -> (ClippedRTree<2>, Vec<Rect<2>>) {
        let mut rng = SplitMix64::new(77);
        let boxes: Vec<Rect<2>> = (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                Rect::new(Point([x, y]), Point([x + 5.0, y + 5.0]))
            })
            .collect();
        let items: Vec<(Rect<2>, DataId)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(Variant::RStar)
                .with_world(Rect::new(Point([0.0, 0.0]), Point([1000.0, 1000.0]))),
            &items,
        );
        (
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline)),
            boxes,
        )
    }

    #[test]
    fn disk_queries_match_memory_queries() {
        let (clipped, _) = build(800);
        let mut store = MemPageStore::new();
        let mut disk = DiskRTree::persist(&clipped, &mut store, 16);
        let mut rng = SplitMix64::new(5);
        for _ in 0..60 {
            let x = rng.gen_range(0.0, 900.0);
            let y = rng.gen_range(0.0, 900.0);
            let q = Rect::new(Point([x, y]), Point([x + 40.0, y + 40.0]));
            let mut expected = clipped.range_query(&q);
            let (mut got, stats) = disk.range_query(&mut store, &q, true);
            expected.sort();
            got.sort();
            assert_eq!(got, expected);
            assert_eq!(stats.results as usize, got.len());
        }
    }

    #[test]
    fn unclipped_disk_queries_match_base_tree() {
        let (clipped, _) = build(500);
        let mut store = MemPageStore::new();
        let mut disk = DiskRTree::persist(&clipped, &mut store, 8);
        let q = Rect::new(Point([100.0, 100.0]), Point([300.0, 300.0]));
        let mut expected = clipped.tree.range_query(&q);
        let (mut got, _) = disk.range_query(&mut store, &q, false);
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn clipping_reduces_page_faults_with_cold_cache() {
        let (clipped, _) = build(1500);
        let mut store = MemPageStore::new();
        let mut disk = DiskRTree::persist(&clipped, &mut store, 4);
        let mut rng = SplitMix64::new(9);
        let mut faults_base = 0u64;
        let mut faults_clip = 0u64;
        for _ in 0..150 {
            let x = rng.gen_range(0.0, 980.0);
            let y = rng.gen_range(0.0, 980.0);
            let q = Rect::new(Point([x, y]), Point([x + 6.0, y + 6.0]));
            disk.drop_caches();
            let (_, s1) = disk.range_query(&mut store, &q, false);
            disk.drop_caches();
            let (_, s2) = disk.range_query(&mut store, &q, true);
            faults_base += s1.page_faults;
            faults_clip += s2.page_faults;
        }
        assert!(
            faults_clip < faults_base,
            "clipping should save page faults: {faults_clip} vs {faults_base}"
        );
    }

    #[test]
    fn warm_pool_produces_hits() {
        let (clipped, _) = build(300);
        let mut store = MemPageStore::new();
        let mut disk = DiskRTree::persist(&clipped, &mut store, 256);
        let q = Rect::new(Point([0.0, 0.0]), Point([500.0, 500.0]));
        let _ = disk.range_query(&mut store, &q, true);
        let cold = disk.pool_stats();
        let _ = disk.range_query(&mut store, &q, true);
        let warm = disk.pool_stats();
        assert_eq!(warm.misses, cold.misses, "second run fully cached");
        assert!(warm.hits > cold.hits);
    }
}
