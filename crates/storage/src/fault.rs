//! Fault-injection doubles for crash/corruption testing.
//!
//! Durability code is only trustworthy if its failure paths are
//! exercised: a crash tears the WAL tail mid-record, a bad sector
//! flips bits in a page that was synced long ago. [`FaultyLog`]
//! damages a log (or any) file in the two ways a real crash does;
//! [`FaultyPageStore`] wraps a [`PageStore`] and corrupts chosen pages
//! on the way out, so snapshot readers can prove they detect damage
//! via checksums instead of deserializing garbage.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::pagestore::{IoCounters, PageStore};

/// Damages a file on disk the way crashes and bad sectors do.
#[derive(Debug)]
pub struct FaultyLog {
    path: PathBuf,
}

impl FaultyLog {
    /// Target the file at `path`.
    pub fn new(path: &Path) -> Self {
        FaultyLog {
            path: path.to_path_buf(),
        }
    }

    /// Drop the last `n` bytes, simulating a crash mid-append.
    pub fn truncate_tail(&self, n: u64) -> std::io::Result<()> {
        let file = OpenOptions::new().write(true).open(&self.path)?;
        let len = file.metadata()?.len();
        file.set_len(len.saturating_sub(n))?;
        file.sync_data()
    }

    /// Flip the low bit of the byte `n` back from the end of the file.
    pub fn flip_bit_from_end(&self, n: u64) -> std::io::Result<()> {
        let len = std::fs::metadata(&self.path)?.len();
        self.flip_bit_at(len.saturating_sub(n + 1))
    }

    /// Flip the low bit of the byte at absolute offset `at`.
    pub fn flip_bit_at(&self, at: u64) -> std::io::Result<()> {
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let mut b = [0u8; 1];
        file.seek(SeekFrom::Start(at))?;
        file.read_exact(&mut b)?;
        b[0] ^= 1;
        file.seek(SeekFrom::Start(at))?;
        file.write_all(&b)?;
        file.sync_data()
    }
}

/// A [`PageStore`] that corrupts selected pages on read.
///
/// Writes pass through untouched — the damage models on-media rot or
/// a misdirected write discovered at read time, which is exactly when
/// a snapshot loader must catch it.
#[derive(Debug)]
pub struct FaultyPageStore<S> {
    inner: S,
    corrupt_pages: Vec<u32>,
}

impl<S: PageStore> FaultyPageStore<S> {
    /// Wrap `inner`; reads of the listed pages come back with their
    /// first byte's low bit flipped.
    pub fn new(inner: S, corrupt_pages: Vec<u32>) -> Self {
        FaultyPageStore {
            inner,
            corrupt_pages,
        }
    }

    /// Recover the wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for FaultyPageStore<S> {
    fn read_page(&mut self, id: u32, buf: &mut [u8]) {
        self.inner.read_page(id, buf);
        if self.corrupt_pages.contains(&id) {
            buf[0] ^= 1;
        }
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) {
        self.inner.write_page(id, buf);
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;
    use cbb_rtree::config::PAGE_SIZE;

    #[test]
    fn faulty_store_corrupts_only_listed_pages() {
        let mut inner = MemPageStore::new();
        inner.write_page(0, &vec![0x40u8; PAGE_SIZE]);
        inner.write_page(1, &vec![0x41u8; PAGE_SIZE]);
        let mut faulty = FaultyPageStore::new(inner, vec![1]);
        let mut buf = vec![0u8; PAGE_SIZE];
        faulty.read_page(0, &mut buf);
        assert_eq!(buf[0], 0x40);
        faulty.read_page(1, &mut buf);
        assert_eq!(buf[0], 0x41 ^ 1);
        assert_eq!(buf[1], 0x41);
    }
}
