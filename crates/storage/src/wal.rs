//! Checksummed, length-prefixed write-ahead log.
//!
//! The serve layer appends one record per coalesced update micro-batch
//! (an atomic one-`DataVersion` unit) and fsyncs before the batch's
//! completion promises are fulfilled. On recovery the log is scanned
//! front to back; the first record that fails its checksum — or whose
//! length prefix runs past the end of the file — marks a torn tail from
//! a mid-write crash, and everything from that point on is discarded by
//! truncating the file back to the last valid record. Records before
//! the tear are exactly the batches whose waiters could have observed
//! an acknowledgement, so truncation never drops an acked write.
//!
//! On-disk layout:
//!
//! ```text
//! [magic "CBBWAL01": 8 bytes]
//! repeated records:
//!   [payload len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! The checksum is the plain IEEE CRC-32 (the one used by zip/png),
//! implemented here table-based so the crate stays dependency-free.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Identifies a WAL file (first 8 bytes).
pub const WAL_MAGIC: [u8; 8] = *b"CBBWAL01";

/// Per-record framing overhead: length prefix + checksum.
pub const WAL_RECORD_HEADER: u64 = 8;

/// Upper bound on a single record's payload. A length prefix above
/// this is treated as tail corruption rather than attempted as an
/// allocation.
pub const MAX_WAL_RECORD: u32 = 1 << 28;

/// IEEE CRC-32 of `data` (polynomial `0xEDB88320`, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    // Byte-at-a-time table, built once on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append handle over a WAL file. Writes buffer in the OS page cache
/// until [`WalWriter::sync`]; commit = append + sync.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    bytes: u64,
}

impl WalWriter {
    /// Create a fresh log at `path` (truncating any existing file),
    /// write the magic, and sync it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            bytes: WAL_MAGIC.len() as u64,
        })
    }

    /// Open `path` for appending, creating it (with magic) if missing.
    ///
    /// The caller is expected to have run [`recover_wal`] first so any
    /// torn tail has already been truncated away.
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        if !path.exists() {
            return Self::create(path);
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let bytes = file.seek(SeekFrom::End(0))?;
        if bytes < WAL_MAGIC.len() as u64 {
            // Crash between create() and the magic landing: start over.
            drop(file);
            return Self::create(path);
        }
        Ok(WalWriter { file, bytes })
    }

    /// Append one record (length prefix + checksum + payload). Not
    /// durable until [`WalWriter::sync`].
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        assert!(
            payload.len() as u64 <= MAX_WAL_RECORD as u64,
            "WAL record over size cap"
        );
        let mut frame = Vec::with_capacity(payload.len() + WAL_RECORD_HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Flush appended records to stable storage (fdatasync).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Current log size in bytes (magic + all appended frames). Drives
    /// the serve layer's checkpoint threshold.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Result of scanning a WAL file front to back.
#[derive(Debug)]
pub struct WalRecovery {
    /// Payloads of every record up to (not including) the first
    /// invalid one, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset just past the last valid record — where appends
    /// resume after recovery.
    pub valid_bytes: u64,
    /// True when the scan stopped early: a torn or corrupt tail was
    /// found (and, via [`recover_wal`], truncated away).
    pub torn: bool,
}

/// Scan the log at `path` without modifying it. A missing file reads
/// as an empty, un-torn log.
pub fn read_wal(path: &Path) -> std::io::Result<WalRecovery> {
    if !path.exists() {
        return Ok(WalRecovery {
            records: Vec::new(),
            valid_bytes: WAL_MAGIC.len() as u64,
            torn: false,
        });
    }
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(scan(&buf))
}

/// Scan the log at `path` and truncate any torn tail in place, so a
/// subsequent [`WalWriter::append_to`] resumes at the last valid
/// record. A missing file is left missing. A file whose magic itself
/// is damaged is reset to an empty log.
pub fn recover_wal(path: &Path) -> std::io::Result<WalRecovery> {
    let rec = read_wal(path)?;
    if rec.torn && path.exists() {
        if rec.valid_bytes < WAL_MAGIC.len() as u64 {
            // Even the magic is gone; rewrite a clean header.
            drop(WalWriter::create(path)?);
        } else {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(rec.valid_bytes)?;
            file.sync_data()?;
        }
    }
    Ok(rec)
}

fn scan(buf: &[u8]) -> WalRecovery {
    if buf.len() < WAL_MAGIC.len() || buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalRecovery {
            records: Vec::new(),
            valid_bytes: 0,
            torn: true,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos == buf.len() {
            // Clean end exactly at a record boundary.
            return WalRecovery {
                records,
                valid_bytes: pos as u64,
                torn: false,
            };
        }
        let rest = &buf[pos..];
        if rest.len() < WAL_RECORD_HEADER as usize {
            break; // torn mid-header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_WAL_RECORD {
            break; // absurd length: corrupt header
        }
        let end = WAL_RECORD_HEADER as usize + len as usize;
        if rest.len() < end {
            break; // torn mid-payload
        }
        let payload = &rest[WAL_RECORD_HEADER as usize..end];
        if crc32(payload) != crc {
            break; // bit rot or torn overwrite
        }
        records.push(payload.to_vec());
        pos += end;
    }
    WalRecovery {
        records,
        valid_bytes: pos as u64,
        torn: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyLog;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cbb_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(&[0xFFu8; 300]).unwrap();
        w.sync().unwrap();
        let logged = w.bytes();
        drop(w);

        let rec = recover_wal(&path).unwrap();
        assert!(!rec.torn);
        assert_eq!(rec.valid_bytes, logged);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[0], b"alpha");
        assert_eq!(rec.records[1], b"");
        assert_eq!(rec.records[2], vec![0xFFu8; 300]);

        // Appends resume cleanly after reopen.
        let mut w = WalWriter::append_to(&path).unwrap();
        assert_eq!(w.bytes(), logged);
        w.append(b"delta").unwrap();
        w.sync().unwrap();
        let rec = recover_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[3], b"delta");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"keep-1").unwrap();
        w.append(b"keep-2").unwrap();
        w.sync().unwrap();
        let good = w.bytes();
        w.append(b"torn-record-payload").unwrap();
        w.sync().unwrap();
        drop(w);

        // Chop the last record in half, as a crash mid-write would.
        FaultyLog::new(&path).truncate_tail(10).unwrap();
        let rec = recover_wal(&path).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.valid_bytes, good);
        assert_eq!(rec.records.len(), 2);
        // The file itself was truncated back to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        // A re-scan is clean.
        assert!(!read_wal(&path).unwrap().torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_detected_and_dropped() {
        let path = tmp("flip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"stable").unwrap();
        w.sync().unwrap();
        let good = w.bytes();
        w.append(b"flipped-soon").unwrap();
        w.sync().unwrap();
        drop(w);

        FaultyLog::new(&path).flip_bit_from_end(3).unwrap();
        let rec = recover_wal(&path).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0], b"stable");
        assert_eq!(rec.valid_bytes, good);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_magic_resets_log() {
        let path = tmp("magic.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"gone").unwrap();
        w.sync().unwrap();
        drop(w);
        FaultyLog::new(&path).flip_bit_at(0).unwrap();
        let rec = recover_wal(&path).unwrap();
        assert!(rec.torn);
        assert!(rec.records.is_empty());
        // The file is a clean empty log again.
        let rec = read_wal(&path).unwrap();
        assert!(!rec.torn);
        assert!(rec.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_prefix_is_tail_corruption() {
        let path = tmp("len.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"ok").unwrap();
        w.sync().unwrap();
        let good = w.bytes();
        drop(w);
        // Hand-append a frame claiming a 1 GiB payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        f.write_all(&[0u8; 8]).unwrap();
        drop(f);
        let rec = recover_wal(&path).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.valid_bytes, good);
        std::fs::remove_file(&path).ok();
    }
}
