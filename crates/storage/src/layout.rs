//! Storage-breakdown accounting (Figure 13): bytes devoted to directory
//! nodes, leaf nodes and clip points of a clipped R-tree, using the
//! Figure 4 physical layout sizes.

use cbb_rtree::config::PAGE_SIZE;
use cbb_rtree::ClippedRTree;

use crate::codec::{clip_point_bytes, CLIP_RECORD_HEADER_BYTES};

/// Byte totals per storage component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Bytes in directory-node pages.
    pub dir_bytes: u64,
    /// Bytes in leaf-node pages.
    pub leaf_bytes: u64,
    /// Bytes in the auxiliary clip structure (table + point arrays).
    pub clip_bytes: u64,
    /// Stored clip points.
    pub clip_points: u64,
    /// Live nodes.
    pub nodes: u64,
}

impl StorageBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.dir_bytes + self.leaf_bytes + self.clip_bytes
    }

    /// Percentage split `(dir, leaf, clips)`.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.dir_bytes as f64 / t * 100.0,
            self.leaf_bytes as f64 / t * 100.0,
            self.clip_bytes as f64 / t * 100.0,
        )
    }

    /// Average stored clip points per node (Figure 13 bar annotations).
    pub fn avg_clip_points(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.clip_points as f64 / self.nodes as f64
        }
    }
}

/// Account a clipped tree's storage in the Figure 4 layout: one 4 KiB page
/// per node; per node a clip-table record (count + pointer) plus its
/// clip-point array (mask byte + `d` coordinates each).
pub fn storage_breakdown<const D: usize>(tree: &ClippedRTree<D>) -> StorageBreakdown {
    let mut b = StorageBreakdown::default();
    for (id, node) in tree.tree.iter_nodes() {
        b.nodes += 1;
        if node.is_leaf() {
            b.leaf_bytes += PAGE_SIZE as u64;
        } else {
            b.dir_bytes += PAGE_SIZE as u64;
        }
        let clips = tree.clips_of(id).len() as u64;
        b.clip_points += clips;
        b.clip_bytes += CLIP_RECORD_HEADER_BYTES as u64 + clips * clip_point_bytes(D) as u64;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, Rect, SplitMix64};
    use cbb_rtree::{DataId, RTree, TreeConfig, Variant};

    fn sample_tree() -> ClippedRTree<2> {
        let mut rng = SplitMix64::new(1);
        let items: Vec<(Rect<2>, DataId)> = (0..600)
            .map(|i| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                (
                    Rect::new(Point([x, y]), Point([x + 3.0, y + 3.0])),
                    DataId(i),
                )
            })
            .collect();
        let tree = RTree::bulk_load(TreeConfig::tiny(Variant::RRStar), &items);
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline))
    }

    #[test]
    fn breakdown_sums_and_dominant_leaves() {
        let t = sample_tree();
        let b = storage_breakdown(&t);
        assert_eq!(b.nodes as usize, t.tree.node_count());
        assert_eq!(b.clip_points as usize, t.total_clip_points());
        assert!(b.leaf_bytes > b.dir_bytes, "leaves dominate storage");
        let (pd, pl, pc) = b.percentages();
        assert!((pd + pl + pc - 100.0).abs() < 1e-9);
        // The paper's observation: clip overhead is a few percent.
        assert!(pc < 15.0, "clip overhead {pc}% unexpectedly high");
        assert!(b.avg_clip_points() > 0.0);
    }

    #[test]
    fn empty_breakdown() {
        let b = StorageBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.percentages(), (0.0, 0.0, 0.0));
        assert_eq!(b.avg_clip_points(), 0.0);
    }
}
