//! Byte-exact node and clip-table codecs (Figure 4 physical layout).
//!
//! Node page (4096 bytes):
//! ```text
//! [level: u32][count: u32][lhv: u64]                       — 16-byte header
//! count × [lo: D×f64][hi: D×f64][child: u32]               — entries
//! ```
//!
//! Clip-table record per node (Figure 4b; the table itself is an array
//! indexed by node id):
//! ```text
//! [count: u16] then count × [mask: u8][coord: D×f64]
//! ```

use cbb_core::ClipPoint;
use cbb_geom::{CornerMask, Point, Rect};
use cbb_rtree::config::{entry_bytes, NODE_HEADER_BYTES, PAGE_SIZE};
use cbb_rtree::{Child, DataId, Entry, Node, NodeId};

/// Serialize a node into a fresh page buffer.
pub fn encode_node<const D: usize>(node: &Node<D>) -> Vec<u8> {
    assert!(
        NODE_HEADER_BYTES + node.entries.len() * entry_bytes(D) <= PAGE_SIZE,
        "node with {} entries overflows a page",
        node.entries.len()
    );
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..4].copy_from_slice(&node.level.to_le_bytes());
    buf[4..8].copy_from_slice(&(node.entries.len() as u32).to_le_bytes());
    buf[8..16].copy_from_slice(&node.lhv.to_le_bytes());
    let mut off = NODE_HEADER_BYTES;
    for e in &node.entries {
        for i in 0..D {
            buf[off..off + 8].copy_from_slice(&e.mbb.lo[i].to_le_bytes());
            off += 8;
        }
        for i in 0..D {
            buf[off..off + 8].copy_from_slice(&e.mbb.hi[i].to_le_bytes());
            off += 8;
        }
        let child: u32 = match e.child {
            Child::Node(NodeId(id)) => id,
            Child::Data(DataId(id)) => id,
        };
        buf[off..off + 4].copy_from_slice(&child.to_le_bytes());
        off += 4;
    }
    buf
}

/// Deserialize a node from a page buffer.
pub fn decode_node<const D: usize>(buf: &[u8]) -> Node<D> {
    let level = u32::from_le_bytes(buf[0..4].try_into().expect("header"));
    let count = u32::from_le_bytes(buf[4..8].try_into().expect("header")) as usize;
    let lhv = u64::from_le_bytes(buf[8..16].try_into().expect("header"));
    let mut node = Node::new(level);
    node.lhv = lhv;
    node.entries.reserve_exact(count);
    let mut off = NODE_HEADER_BYTES;
    let read_f64 = |off: &mut usize| {
        let v = f64::from_le_bytes(buf[*off..*off + 8].try_into().expect("coord"));
        *off += 8;
        v
    };
    for _ in 0..count {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for l in lo.iter_mut() {
            *l = read_f64(&mut off);
        }
        for h in hi.iter_mut() {
            *h = read_f64(&mut off);
        }
        let raw = u32::from_le_bytes(buf[off..off + 4].try_into().expect("child"));
        off += 4;
        let child = if level == 0 {
            Child::Data(DataId(raw))
        } else {
            Child::Node(NodeId(raw))
        };
        node.entries.push(Entry {
            mbb: Rect::new(Point(lo), Point(hi)),
            child,
        });
    }
    node.recompute_mbb();
    node
}

/// Bytes one clip point occupies on disk.
pub const fn clip_point_bytes(d: usize) -> usize {
    1 + d * std::mem::size_of::<f64>()
}

/// Bytes the per-node clip-table header occupies (count + offset pointer).
pub const CLIP_RECORD_HEADER_BYTES: usize = 2 + 8;

/// Serialize one node's clip points.
pub fn encode_clips<const D: usize>(clips: &[ClipPoint<D>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + clips.len() * clip_point_bytes(D));
    buf.extend_from_slice(&(clips.len() as u16).to_le_bytes());
    for c in clips {
        buf.push(c.mask.bits());
        for i in 0..D {
            buf.extend_from_slice(&c.coord[i].to_le_bytes());
        }
    }
    buf
}

/// Deserialize one node's clip points (scores are not persisted — they
/// only order the points, and the order is preserved on disk).
pub fn decode_clips<const D: usize>(buf: &[u8]) -> Vec<ClipPoint<D>> {
    let count = u16::from_le_bytes(buf[0..2].try_into().expect("count")) as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 2;
    for _ in 0..count {
        let mask = CornerMask::new(buf[off]);
        off += 1;
        let mut coord = [0.0; D];
        for c in coord.iter_mut() {
            *c = f64::from_le_bytes(buf[off..off + 8].try_into().expect("coord"));
            off += 8;
        }
        out.push(ClipPoint::new(mask, Point(coord)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_node() -> Node<2> {
        let mut n = Node::new(0);
        for i in 0..10 {
            let x = i as f64 * 3.0;
            n.entries.push(Entry::data(
                Rect::new(Point([x, x + 1.0]), Point([x + 2.0, x + 4.0])),
                DataId(i),
            ));
        }
        n.recompute_mbb();
        n.lhv = 0xDEAD_BEEF;
        n
    }

    #[test]
    fn node_roundtrip_leaf() {
        let n = sample_node();
        let buf = encode_node(&n);
        assert_eq!(buf.len(), PAGE_SIZE);
        let back: Node<2> = decode_node(&buf);
        assert_eq!(back.level, 0);
        assert_eq!(back.lhv, n.lhv);
        assert_eq!(back.entries.len(), n.entries.len());
        for (a, b) in n.entries.iter().zip(&back.entries) {
            assert_eq!(a.mbb, b.mbb);
            assert_eq!(a.child, b.child);
        }
        assert_eq!(back.mbb, n.mbb);
    }

    #[test]
    fn node_roundtrip_directory() {
        let mut n: Node<3> = Node::new(2);
        n.entries.push(Entry::node(
            Rect::new(Point([0.0; 3]), Point([1.0, 2.0, 3.0])),
            NodeId(17),
        ));
        n.recompute_mbb();
        let back: Node<3> = decode_node(&encode_node(&n));
        assert_eq!(back.level, 2);
        assert_eq!(back.entries[0].child, Child::Node(NodeId(17)));
    }

    #[test]
    fn full_page_fits_exactly() {
        let mut n: Node<2> = Node::new(0);
        let cap = (PAGE_SIZE - NODE_HEADER_BYTES) / entry_bytes(2);
        for i in 0..cap {
            n.entries.push(Entry::data(
                Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])),
                DataId(i as u32),
            ));
        }
        n.recompute_mbb();
        let buf = encode_node(&n);
        let back: Node<2> = decode_node(&buf);
        assert_eq!(back.entries.len(), cap);
    }

    #[test]
    #[should_panic(expected = "overflows a page")]
    fn overfull_node_panics() {
        let mut n: Node<2> = Node::new(0);
        let cap = (PAGE_SIZE - NODE_HEADER_BYTES) / entry_bytes(2);
        for i in 0..=cap {
            n.entries.push(Entry::data(
                Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])),
                DataId(i as u32),
            ));
        }
        let _ = encode_node(&n);
    }

    #[test]
    fn clip_roundtrip() {
        let clips = vec![
            ClipPoint::new(CornerMask::new(0b01), Point([1.5, 2.5])),
            ClipPoint::new(CornerMask::new(0b10), Point([3.5, 4.5])),
        ];
        let buf = encode_clips(&clips);
        assert_eq!(buf.len(), 2 + 2 * clip_point_bytes(2));
        let back: Vec<ClipPoint<2>> = decode_clips(&buf);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].mask, clips[0].mask);
        assert_eq!(back[0].coord, clips[0].coord);
        assert_eq!(back[1].coord, clips[1].coord);
    }

    #[test]
    fn clip_bytes_formula() {
        assert_eq!(clip_point_bytes(2), 17);
        assert_eq!(clip_point_bytes(3), 25);
    }
}
