//! Offline stand-in for `criterion` covering the surface this workspace
//! uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is warmed up briefly, then timed for a fixed wall-clock
//! budget, and the mean ns/iteration is printed. There is no statistical
//! analysis, HTML report, or baseline comparison — this is a smoke-level
//! harness that keeps `cargo bench` meaningful offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(60);
/// Wall-clock budget spent warming each benchmark up.
const WARMUP_BUDGET: Duration = Duration::from_millis(15);

/// Top-level driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().0, f);
        self
    }
}

/// A named collection of benchmarks sharing a report prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Time `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, f);
        self
    }

    /// Time `f` under `id` with a shared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, |b| f(b, input));
        self
    }

    /// End the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    println!("  {label}: {ns:.1} ns/iter ({} iters)", bencher.iterations);
}

/// Passed to the closure; `iter` performs the actual timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Warm `routine` up, then run it repeatedly for the measurement
    /// budget, accumulating time and iteration counts.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std::hint::black_box(routine());
            iterations += 1;
            if start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.iterations += iterations;
        self.elapsed += start.elapsed();
    }
}

/// A benchmark name of the form `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combine a function name with a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Convert into the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut total = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 42), &7u64, |b, x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(total > 0);
    }
}
