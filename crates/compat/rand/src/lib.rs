//! Offline stand-in for the `rand` crate covering exactly the surface this
//! workspace uses: `StdRng` seeded via `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open and inclusive ranges, `Rng::gen_bool`,
//! and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — statistically solid for dataset
//! synthesis and fully deterministic per seed, which is all the callers
//! (synthetic dataset generators and shuffles) require. It makes no
//! attempt to match the stream of the real `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased bounded integer draw.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % bound;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + next_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range");
        lo + next_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + next_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `seq` feature the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0..u64::MAX), c.gen_range(0..u64::MAX));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let g = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let i = rng.gen_range(2..9usize);
            assert!((2..9).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
