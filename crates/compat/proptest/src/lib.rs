//! Offline stand-in for `proptest` covering the surface this workspace
//! uses: the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, `Strategy` with `prop_map`, range and tuple
//! strategies, `Just`, `any::<bool>()`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test samples `cases` random inputs (deterministically
//! seeded per test name) and fails on the first counterexample, reporting
//! the case number. Unlike real proptest there is **no shrinking** — the
//! failing inputs are printed as drawn.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random source. Like the real crate, this
    /// stand-in draws its entropy from `rand` (the sibling stand-in)
    /// rather than duplicating a generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeded from the test name so every property gets an
        /// independent, reproducible stream.
        pub fn default_for_test(name: &str) -> Self {
            use rand::SeedableRng;
            // FNV-1a over the name, mixed into a fixed session seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h ^ 0x5EED_CBB0_0000_0001),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            rand::Rng::gen_range(&mut self.inner, 0.0..1.0)
        }

        /// Unbiased uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            rand::Rng::gen_range(&mut self.inner, 0..bound)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty inclusive f64 range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive integer range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// A type-erased strategy (the arms of `prop_oneof!`).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Erase a strategy's type (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        BoxedStrategy(Box::new(move |rng| s.sample(rng)))
    }

    /// Uniform choice among erased strategies.
    pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

    impl<T> OneOf<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf(arms)
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.0.len() as u64) as usize;
            self.0[arm].sample(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Its canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy of `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Fair coin flips.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection. Mirroring the real
    /// crate, `vec` takes `impl Into<SizeRange>` rather than a generic
    /// strategy so that bare literal ranges (`1..6`) infer as `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors of `element` values with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run each property `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::default_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left),
            stringify!($right),
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` namespace of the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(x in 0.0f64..10.0, n in 1usize..5, b in any::<bool>()) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            let _coin: bool = b;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for e in &v {
                prop_assert!(*e < 4, "element {} out of range", e);
            }
        }

        #[test]
        fn oneof_and_just(c in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(c == 1 || c == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_honoured(tup in ((0i32..5), (0i32..5)).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..9).contains(&tup));
        }
    }

    #[test]
    fn prop_assert_reports_counterexample() {
        // Exercise the failure path without registering a failing #[test]:
        // run the assertion macros inside a closure the way the generated
        // harness does.
        let result: Result<(), TestCaseError> = (|| {
            let x = 3u8;
            prop_assert!(x > 200, "x was {}", x);
            Ok(())
        })();
        let message = format!("{}", result.unwrap_err());
        assert!(message.contains("x was 3"), "got: {message}");

        let result: Result<(), TestCaseError> = (|| {
            prop_assert_eq!(vec![1, 2], vec![1, 3]);
            Ok(())
        })();
        let message = format!("{}", result.unwrap_err());
        assert!(message.contains("left"), "got: {message}");
    }
}
