//! Corner bitmasks (paper §III-A).
//!
//! A hyper-rectangle `R = ⟨l, u⟩` has `2^d` corners. A bitmask `b` selects
//! one: bit `i` set means the corner takes the **maximum** (`u[i]`) in
//! dimension `i`, clear means the minimum (`l[i]`). The same masks orient
//! the dominance relation (Definition 4) and label clip points.

use std::fmt;

/// A d-bit corner selector. Supports up to 8 dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CornerMask(u8);

impl CornerMask {
    /// Mask with the given raw bits. Bits at positions `>= D` must be zero
    /// for a `D`-dimensional use; [`CornerMask::all`] guarantees this.
    pub const fn new(bits: u8) -> Self {
        CornerMask(bits)
    }

    /// The all-zero mask (the minimum corner, `R^{0…0} = l`).
    pub const MIN: CornerMask = CornerMask(0);

    /// The all-one mask for `D` dimensions (the maximum corner `u`).
    pub const fn max_corner<const D: usize>() -> Self {
        assert!(D <= 8, "CornerMask supports at most 8 dimensions");
        CornerMask(((1u16 << D) - 1) as u8)
    }

    /// Iterate over all `2^D` corner masks, in ascending bit order.
    pub fn all<const D: usize>() -> impl Iterator<Item = CornerMask> {
        assert!(D <= 8, "CornerMask supports at most 8 dimensions");
        (0u16..(1 << D)).map(|b| CornerMask(b as u8))
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether bit `i` is set (dimension `i` maximised).
    pub const fn bit(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Bitwise complement within `D` dimensions: the opposite corner (`∼b`).
    pub const fn flipped<const D: usize>(self) -> Self {
        CornerMask(!self.0 & (((1u16 << D) - 1) as u8))
    }

    /// Bitwise xor: `selector ⊕ mask` in Algorithm 2.
    pub const fn xor(self, other: Self) -> Self {
        CornerMask(self.0 ^ other.0)
    }

    /// Number of set bits.
    pub const fn count_ones(self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Debug for CornerMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:08b}", self.0)
    }
}

impl fmt::Display for CornerMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerates_every_corner() {
        let masks: Vec<_> = CornerMask::all::<2>().collect();
        assert_eq!(masks.len(), 4);
        assert_eq!(masks[0], CornerMask::new(0b00));
        assert_eq!(masks[3], CornerMask::new(0b11));
        assert_eq!(CornerMask::all::<3>().count(), 8);
    }

    #[test]
    fn bits_and_bit() {
        let m = CornerMask::new(0b101);
        assert!(m.bit(0));
        assert!(!m.bit(1));
        assert!(m.bit(2));
        assert_eq!(m.bits(), 0b101);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn flipped_is_opposite_corner() {
        let m = CornerMask::new(0b01);
        assert_eq!(m.flipped::<2>(), CornerMask::new(0b10));
        // In 3-d the complement keeps only the low 3 bits.
        let m3 = CornerMask::new(0b001);
        assert_eq!(m3.flipped::<3>(), CornerMask::new(0b110));
        // Double flip round-trips.
        assert_eq!(m3.flipped::<3>().flipped::<3>(), m3);
    }

    #[test]
    fn xor_matches_algorithm2_selectors() {
        let mask = CornerMask::new(0b10);
        // Query selector 2^d − 1 == negation.
        let query_sel = CornerMask::max_corner::<2>();
        assert_eq!(query_sel.xor(mask), mask.flipped::<2>());
        // Insertion selector 0 == identity.
        assert_eq!(CornerMask::MIN.xor(mask), mask);
    }

    #[test]
    fn max_corner_mask() {
        assert_eq!(CornerMask::max_corner::<2>().bits(), 0b11);
        assert_eq!(CornerMask::max_corner::<3>().bits(), 0b111);
        assert_eq!(CornerMask::max_corner::<8>().bits(), 0xff);
    }
}
