//! d-dimensional points with array-notation coordinates (paper §III-A).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Coord;

/// A point `p = (p[1], …, p[d])` in `D`-dimensional space.
///
/// Coordinates are `f64`; the paper's array notation `p[i]` maps to
/// `p[i - 1]` here (Rust is zero-indexed).
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [Coord; D]);

impl<const D: usize> Point<D> {
    /// A point with every coordinate set to `v`.
    pub const fn splat(v: Coord) -> Self {
        Point([v; D])
    }

    /// The origin.
    pub const fn origin() -> Self {
        Self::splat(0.0)
    }

    /// Borrow the raw coordinate array.
    pub fn coords(&self) -> &[Coord; D] {
        &self.0
    }

    /// Component-wise minimum of two points.
    pub fn min(&self, other: &Self) -> Self {
        self.zip_with(other, Coord::min)
    }

    /// Component-wise maximum of two points.
    pub fn max(&self, other: &Self) -> Self {
        self.zip_with(other, Coord::max)
    }

    /// Midpoint of the segment between `self` and `other`.
    pub fn midpoint(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| 0.5 * (a + b))
    }

    /// Squared Euclidean distance to `other`.
    pub fn distance_sq(&self, other: &Self) -> Coord {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Self) -> Coord {
        self.distance_sq(other).sqrt()
    }

    /// True when every coordinate is finite (no NaN / ±∞).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Apply `f` to each coordinate, producing a new point.
    pub fn map(&self, mut f: impl FnMut(Coord) -> Coord) -> Self {
        Point(std::array::from_fn(|i| f(self.0[i])))
    }

    /// Component-wise combination of two points.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(Coord, Coord) -> Coord) -> Self {
        Point(std::array::from_fn(|i| f(self.0[i], other.0[i])))
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = Coord;

    fn index(&self, i: usize) -> &Coord {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    fn index_mut(&mut self, i: usize) -> &mut Coord {
        &mut self.0[i]
    }
}

impl<const D: usize> From<[Coord; D]> for Point<D> {
    fn from(a: [Coord; D]) -> Self {
        Point(a)
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_origin() {
        let p: Point<3> = Point::splat(2.5);
        assert_eq!(p.coords(), &[2.5, 2.5, 2.5]);
        let o: Point<2> = Point::origin();
        assert_eq!(o, Point([0.0, 0.0]));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point([1.0, 5.0]);
        let b = Point([3.0, 2.0]);
        assert_eq!(a.min(&b), Point([1.0, 2.0]));
        assert_eq!(a.max(&b), Point([3.0, 5.0]));
    }

    #[test]
    fn midpoint_is_average() {
        let a = Point([0.0, 0.0, 0.0]);
        let b = Point([2.0, 4.0, -6.0]);
        assert_eq!(a.midpoint(&b), Point([1.0, 2.0, -3.0]));
    }

    #[test]
    fn distances() {
        let a = Point([0.0, 0.0]);
        let b = Point([3.0, 4.0]);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut p = Point([1.0, 2.0]);
        p[0] = 7.0;
        assert_eq!(p[0], 7.0);
        assert_eq!(p[1], 2.0);
    }

    #[test]
    fn finite_detects_nan() {
        assert!(Point([1.0, 2.0]).is_finite());
        assert!(!Point([f64::NAN, 2.0]).is_finite());
        assert!(!Point([f64::INFINITY, 2.0]).is_finite());
    }

    #[test]
    fn map_and_zip() {
        let a = Point([1.0, 2.0]);
        let b = Point([10.0, 20.0]);
        assert_eq!(a.map(|c| c * 2.0), Point([2.0, 4.0]));
        assert_eq!(a.zip_with(&b, |x, y| x + y), Point([11.0, 22.0]));
    }
}
