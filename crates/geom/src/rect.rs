//! Axis-aligned hyper-rectangles (`MBB`s in the paper's terminology).

use std::fmt;

use crate::{Coord, CornerMask, Point};

/// A hyper-rectangle `R = ⟨l, u⟩` with `l ≤ u` component-wise.
///
/// `Rect` doubles as the *minimum bounding box* of a set of objects: the
/// smallest rectilinear box containing them (paper §III-A). Degenerate
/// rectangles (zero extent in some or all dimensions, e.g. points) are valid.
#[derive(Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Minimum corner `l`.
    pub lo: Point<D>,
    /// Maximum corner `u`.
    pub hi: Point<D>,
}

impl<const D: usize> Rect<D> {
    /// Build from two corners; debug-asserts `lo ≤ hi`.
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        debug_assert!(
            (0..D).all(|i| lo[i] <= hi[i]),
            "Rect requires lo <= hi: {lo:?} vs {hi:?}"
        );
        Rect { lo, hi }
    }

    /// Build from two arbitrary corner points (order normalised).
    pub fn from_corners(a: Point<D>, b: Point<D>) -> Self {
        Rect {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// A degenerate rectangle covering a single point.
    pub fn point(p: Point<D>) -> Self {
        Rect { lo: p, hi: p }
    }

    /// The MBB of a non-empty slice of rectangles; `None` on empty input.
    pub fn mbb_of(rects: &[Rect<D>]) -> Option<Self> {
        let mut it = rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// The corner selected by `mask`: `R^b[i] = u[i]` if `b[i]` else `l[i]`.
    pub fn corner(&self, mask: CornerMask) -> Point<D> {
        Point(std::array::from_fn(|i| {
            if mask.bit(i) {
                self.hi[i]
            } else {
                self.lo[i]
            }
        }))
    }

    /// Extent (side length) along dimension `i`.
    pub fn extent(&self, i: usize) -> Coord {
        self.hi[i] - self.lo[i]
    }

    /// Volume (area in 2-d). Degenerate rectangles have volume 0.
    pub fn volume(&self) -> Coord {
        let mut v = 1.0;
        for i in 0..D {
            v *= self.extent(i);
        }
        v
    }

    /// Margin: the sum of extents over all dimensions (the R*-tree's
    /// split-axis criterion; half the perimeter in 2-d).
    pub fn margin(&self) -> Coord {
        (0..D).map(|i| self.extent(i)).sum()
    }

    /// Center point.
    pub fn center(&self) -> Point<D> {
        self.lo.midpoint(&self.hi)
    }

    /// Closed-interval intersection test (shared boundaries intersect).
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        for i in 0..D {
            if self.lo[i] > other.hi[i] || other.lo[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect<D>) -> Option<Rect<D>> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] > hi[i] {
                return None;
            }
        }
        Some(Rect {
            lo: Point(lo),
            hi: Point(hi),
        })
    }

    /// Volume of the overlap with `other` (0 when disjoint or touching).
    pub fn overlap_volume(&self, other: &Rect<D>) -> Coord {
        let mut v = 1.0;
        for i in 0..D {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// The smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        Rect {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Volume increase needed to include `other`
    /// (`vol(self ∪ other) − vol(self)`, the Guttman insertion criterion).
    pub fn enlargement(&self, other: &Rect<D>) -> Coord {
        self.union(other).volume() - self.volume()
    }

    /// Margin increase needed to include `other` (RR*-tree criterion).
    pub fn margin_enlargement(&self, other: &Rect<D>) -> Coord {
        self.union(other).margin() - self.margin()
    }

    /// Whether `p` lies inside (closed) this rectangle.
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p[i] < self.lo[i] || p[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Whether `other` lies entirely inside (closed) this rectangle.
    pub fn contains_rect(&self, other: &Rect<D>) -> bool {
        for i in 0..D {
            if other.lo[i] < self.lo[i] || other.hi[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Squared Euclidean distance between centers.
    pub fn center_distance_sq(&self, other: &Rect<D>) -> Coord {
        self.center().distance_sq(&other.center())
    }

    /// Squared minimum Euclidean distance from `p` to this rectangle
    /// (`0` when `p` lies inside) — the MINDIST bound of the kNN
    /// literature: no point of the rectangle is closer to `p` than this.
    pub fn min_dist_sq(&self, p: &Point<D>) -> Coord {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// True when all coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }
}

impl<const D: usize> fmt::Debug for Rect<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?}, {:?}⟩", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    #[test]
    fn corners_follow_masks() {
        let r = r2(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.corner(CornerMask::new(0b00)), Point([1.0, 2.0]));
        assert_eq!(r.corner(CornerMask::new(0b01)), Point([3.0, 2.0]));
        assert_eq!(r.corner(CornerMask::new(0b10)), Point([1.0, 4.0]));
        assert_eq!(r.corner(CornerMask::new(0b11)), Point([3.0, 4.0]));
    }

    #[test]
    fn from_corners_normalises() {
        let r = Rect::from_corners(Point([3.0, 1.0]), Point([0.0, 5.0]));
        assert_eq!(r.lo, Point([0.0, 1.0]));
        assert_eq!(r.hi, Point([3.0, 5.0]));
    }

    #[test]
    fn volume_margin_center() {
        let r = r2(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.volume(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(r.center(), Point([1.0, 1.5]));
        // Degenerate point rect.
        let p = Rect::point(Point([1.0, 1.0]));
        assert_eq!(p.volume(), 0.0);
        assert_eq!(p.margin(), 0.0);
    }

    #[test]
    fn intersection_cases() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        let b = r2(1.0, 1.0, 3.0, 3.0);
        let c = r2(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r2(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        // Shared boundary counts as intersecting but zero overlap volume.
        let d = r2(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap_volume(&d), 0.0);
        assert_eq!(a.overlap_volume(&b), 1.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = r2(0.0, 0.0, 1.0, 1.0);
        let b = r2(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, r2(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.margin_enlargement(&b), 6.0 - 2.0);
        // Enlargement of a contained rect is 0.
        let inner = r2(0.2, 0.2, 0.8, 0.8);
        assert_eq!(a.enlargement(&inner), 0.0);
    }

    #[test]
    fn containment() {
        let a = r2(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_point(&Point([0.0, 4.0])));
        assert!(!a.contains_point(&Point([-0.1, 2.0])));
        assert!(a.contains_rect(&r2(1.0, 1.0, 2.0, 2.0)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&r2(1.0, 1.0, 5.0, 2.0)));
    }

    #[test]
    fn mbb_of_slice() {
        assert_eq!(Rect::<2>::mbb_of(&[]), None);
        let rects = [r2(0.0, 0.0, 1.0, 1.0), r2(3.0, -1.0, 4.0, 0.5)];
        assert_eq!(Rect::mbb_of(&rects), Some(r2(0.0, -1.0, 4.0, 1.0)));
    }

    #[test]
    fn three_d_volume() {
        let r: Rect<3> = Rect::new(Point([0.0; 3]), Point([2.0, 3.0, 4.0]));
        assert_eq!(r.volume(), 24.0);
        assert_eq!(r.margin(), 9.0);
        assert_eq!(r.corner(CornerMask::new(0b101)), Point([2.0, 0.0, 4.0]));
    }

    #[test]
    fn min_dist_sq_cases() {
        let r = r2(1.0, 1.0, 3.0, 3.0);
        // Inside and on the border: zero.
        assert_eq!(r.min_dist_sq(&Point([2.0, 2.0])), 0.0);
        assert_eq!(r.min_dist_sq(&Point([1.0, 3.0])), 0.0);
        // Face-adjacent: one axis contributes.
        assert_eq!(r.min_dist_sq(&Point([0.0, 2.0])), 1.0);
        assert_eq!(r.min_dist_sq(&Point([2.0, 5.0])), 4.0);
        // Corner-adjacent: both axes contribute.
        assert_eq!(r.min_dist_sq(&Point([0.0, 0.0])), 2.0);
        assert_eq!(r.min_dist_sq(&Point([5.0, 6.0])), 13.0);
        // Degenerate (point) rectangle: plain squared distance.
        let p = Rect::point(Point([1.0, 2.0]));
        assert_eq!(p.min_dist_sq(&Point([4.0, 6.0])), 25.0);
    }
}
