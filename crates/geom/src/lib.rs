//! # cbb-geom — d-dimensional rectilinear geometry
//!
//! Substrate for the clipped-bounding-box (CBB) reproduction: points,
//! axis-aligned hyper-rectangles, corner masks, the oriented dominance
//! relation of the paper (Definition 4), and exact / Monte-Carlo union
//! volumes of box sets (used to measure *dead space*, Definition 1).
//!
//! Everything is generic over the compile-time dimensionality `D`; the
//! experiments use `D = 2` and `D = 3` but nothing here is specific to
//! low dimensions (masks support `D ≤ 8`).
//!
//! The crate is dependency-free; deterministic sampling uses an internal
//! SplitMix64 generator so that measured dead-space numbers are exactly
//! reproducible across runs and platforms.

pub mod dominance;
pub mod mask;
pub mod point;
pub mod rect;
pub mod sampling;
pub mod union;

pub use dominance::{dominates, dominates_eq, dominates_strict_all};
pub use mask::CornerMask;
pub use point::Point;
pub use rect::Rect;
pub use sampling::SplitMix64;
pub use union::{dead_space_fraction, union_volume, union_volume_exact, union_volume_mc};

/// Coordinate scalar used throughout the workspace.
pub type Coord = f64;
