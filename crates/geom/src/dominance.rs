//! Oriented dominance (paper Definition 4).
//!
//! Given a corner mask `b`, point `p` *dominates* `q` (written `p ≺_b q`)
//! when `p` is at least as close to the corner `R^b` as `q` in **every**
//! dimension and the points differ. Equivalently (and how the paper states
//! it for MBBs): `p ≺_b q ⟺ p ∈ MBB({q, R^b})`.
//!
//! Closeness to `R^b` per dimension: if `b[i]` is set the corner maximises
//! dimension `i`, so *larger* coordinates are closer; otherwise smaller ones
//! are.

use crate::{CornerMask, Point};

/// Strict oriented dominance `p ≺_b q`: `p` at least as close to corner `b`
/// as `q` in every dimension, and `p ≠ q`.
pub fn dominates<const D: usize>(p: &Point<D>, q: &Point<D>, b: CornerMask) -> bool {
    let mut strict = false;
    for i in 0..D {
        if b.bit(i) {
            if p[i] < q[i] {
                return false;
            }
            strict |= p[i] > q[i];
        } else {
            if p[i] > q[i] {
                return false;
            }
            strict |= p[i] < q[i];
        }
    }
    strict
}

/// Non-strict oriented dominance (`p ⪯_b q`): like [`dominates`] but `true`
/// for equal points.
///
/// Note that the Algorithm 2 pruning tests use [`dominates_strict_all`]:
/// under closed-rectangle intersection semantics a query corner that merely
/// reaches a clip region's boundary plane may still touch an object lying
/// on that plane, so pruning requires strictness in every dimension (see
/// `cbb-core::intersect` for the full argument).
pub fn dominates_eq<const D: usize>(p: &Point<D>, q: &Point<D>, b: CornerMask) -> bool {
    for i in 0..D {
        if b.bit(i) {
            if p[i] < q[i] {
                return false;
            }
        } else if p[i] > q[i] {
            return false;
        }
    }
    true
}

/// All-strict oriented dominance: `p` *strictly* closer to corner `b` than
/// `q` in **every** dimension — i.e. `p` lies in the interior (toward the
/// corner) of `MBB(q, R^b)`.
///
/// This is the stairline validity test: a splice point `t` is invalid only
/// when some skyline point sits strictly inside `MBB(t, R^b)`, because only
/// then does the corresponding object overlap the clipped region with
/// positive measure. A skyline point on the region's *boundary* (equal in
/// some dimension) belongs to an object extending away from the corner, so
/// the overlap is measure-zero and clipping stays exact. Using the weaker
/// [`dominates`] here would reject every proper splice — each splice shares
/// a coordinate with both of its source points by construction.
pub fn dominates_strict_all<const D: usize>(p: &Point<D>, q: &Point<D>, b: CornerMask) -> bool {
    for i in 0..D {
        if b.bit(i) {
            if p[i] <= q[i] {
                return false;
            }
        } else if p[i] >= q[i] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const B00: CornerMask = CornerMask::new(0b00);
    const B11: CornerMask = CornerMask::new(0b11);

    #[test]
    fn paper_running_example() {
        // Figure 2: o4^00 ≺_00 o5^00 because o4's corner is closer to R^00
        // in both x and y.
        let o4 = Point([5.0, 1.0]);
        let o5 = Point([6.0, 2.0]);
        assert!(dominates(&o4, &o5, B00));
        assert!(!dominates(&o5, &o4, B00));
        // Toward the opposite corner the relation flips.
        assert!(dominates(&o5, &o4, B11));
    }

    #[test]
    fn incomparable_points() {
        let p = Point([1.0, 5.0]);
        let q = Point([5.0, 1.0]);
        assert!(!dominates(&p, &q, B00));
        assert!(!dominates(&q, &p, B00));
        assert!(!dominates(&p, &q, B11));
        assert!(!dominates(&q, &p, B11));
    }

    #[test]
    fn strictness() {
        let p = Point([1.0, 1.0]);
        assert!(!dominates(&p, &p, B00));
        assert!(dominates_eq(&p, &p, B00));
        // Equal in one dim, better in the other → strict dominance holds.
        let q = Point([1.0, 2.0]);
        assert!(dominates(&p, &q, B00));
        assert!(dominates_eq(&p, &q, B00));
    }

    #[test]
    fn mixed_masks() {
        // b = 01: dimension 0 maximised, dimension 1 minimised.
        let b = CornerMask::new(0b01);
        let p = Point([9.0, 0.0]);
        let q = Point([5.0, 3.0]);
        assert!(dominates(&p, &q, b));
        assert!(!dominates(&q, &p, b));
    }

    #[test]
    fn equivalent_to_membership_in_corner_mbb() {
        // p ≺_b q ⟺ p ∈ MBB({q, R^b}) (and p ≠ q). Spot-check on a grid.
        use crate::Rect;
        let r: Rect<2> = Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0]));
        for bm in CornerMask::all::<2>() {
            let corner = r.corner(bm);
            for qx in [2.0, 5.0] {
                for qy in [3.0, 7.0] {
                    let q = Point([qx, qy]);
                    let region = Rect::from_corners(q, corner);
                    for px in [1.0, 4.0, 6.0, 9.0] {
                        for py in [1.0, 4.0, 6.0, 9.0] {
                            let p = Point([px, py]);
                            let member = region.contains_point(&p) && p != q;
                            assert_eq!(dominates(&p, &q, bm), member, "p={p:?} q={q:?} b={bm:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn three_d() {
        let b = CornerMask::new(0b111);
        let p = Point([5.0, 5.0, 5.0]);
        let q = Point([4.0, 4.0, 4.0]);
        assert!(dominates(&p, &q, b));
        assert!(!dominates(&q, &p, b));
        assert!(dominates(&q, &p, CornerMask::new(0b000)));
    }

    #[test]
    fn strict_all_requires_every_dimension() {
        let p = Point([5.0, 5.0]);
        // Strict in both dims.
        assert!(dominates_strict_all(&p, &Point([3.0, 3.0]), B11));
        // Equal in one dim → fails all-strict but passes plain dominance.
        let q = Point([3.0, 5.0]);
        assert!(!dominates_strict_all(&p, &q, B11));
        assert!(dominates(&p, &q, B11));
        // Never reflexive.
        assert!(!dominates_strict_all(&p, &p, B11));
        assert!(!dominates_strict_all(&p, &p, B00));
    }

    #[test]
    fn strict_all_implies_dominates() {
        for (px, py, qx, qy) in [(1.0, 2.0, 3.0, 4.0), (0.0, 0.0, -1.0, -2.0)] {
            let p = Point([px, py]);
            let q = Point([qx, qy]);
            for b in CornerMask::all::<2>() {
                if dominates_strict_all(&p, &q, b) {
                    assert!(dominates(&p, &q, b));
                }
            }
        }
    }
}
