//! Deterministic, dependency-free pseudo-randomness for volume estimation.
//!
//! `cbb-geom` deliberately has no external dependencies, so the Monte-Carlo
//! union-volume estimator uses a SplitMix64 generator. SplitMix64 passes
//! BigCrush, has a full 2^64 period, and — crucially for the experiments —
//! gives bit-identical sequences on every platform, so measured dead-space
//! percentages are exactly reproducible.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is negligible for the n ≪ 2^64 used here.
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1_000 {
            let x = g.gen_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let i = g.gen_index(10);
            assert!(i < 10);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut g = SplitMix64::new(123);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
