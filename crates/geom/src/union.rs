//! Union volume of box sets and dead-space measurement (paper Definition 1).
//!
//! The *dead space* of an MBB `R` over objects `O` is the part of `R` not
//! covered by any object. Measuring it requires the volume of the union of
//! the (box-approximated) objects, clipped to `R`.
//!
//! Two engines are provided:
//!
//! * **Exact** ([`union_volume_exact`]): coordinate compression. All box
//!   boundaries induce a grid; each box marks the cells it covers; marked
//!   cell volumes are summed. Exact for any `D`, cost `O(Σ_b cells(b))` and
//!   `O(total cells)` memory — cheap for the ≤ `2^{d+1}` clip regions and for
//!   typical 2-d nodes, expensive for large 3-d leaf nodes.
//! * **Monte-Carlo** ([`union_volume_mc`]): deterministic SplitMix64 point
//!   sampling — the standard estimator used when the exact grid would exceed
//!   a cell budget.
//!
//! [`union_volume`] picks automatically; [`dead_space_fraction`] is the
//! measurement the experiments report.

use crate::{Rect, SplitMix64};

/// Cell budget above which [`union_volume`] switches to Monte-Carlo.
pub const DEFAULT_CELL_BUDGET: usize = 400_000;

/// Samples used by the automatic Monte-Carlo fallback.
pub const DEFAULT_MC_SAMPLES: usize = 8_192;

/// Exact union volume of `boxes ∩ frame` via coordinate compression.
pub fn union_volume_exact<const D: usize>(frame: &Rect<D>, boxes: &[Rect<D>]) -> f64 {
    union_volume_exact_budgeted(frame, boxes, usize::MAX)
        .expect("unlimited budget cannot be exceeded")
}

/// Exact union volume, bailing out with `None` when the compressed grid
/// would exceed `max_cells`.
pub fn union_volume_exact_budgeted<const D: usize>(
    frame: &Rect<D>,
    boxes: &[Rect<D>],
    max_cells: usize,
) -> Option<f64> {
    let clipped: Vec<Rect<D>> = boxes.iter().filter_map(|b| b.intersection(frame)).collect();
    if clipped.is_empty() {
        return Some(0.0);
    }

    // Compressed coordinates per dimension.
    let mut coords: [Vec<f64>; D] = std::array::from_fn(|_| Vec::new());
    for (i, cs) in coords.iter_mut().enumerate() {
        cs.reserve(2 * clipped.len());
        for b in &clipped {
            cs.push(b.lo[i]);
            cs.push(b.hi[i]);
        }
        cs.sort_by(|a, b| a.partial_cmp(b).expect("finite coords"));
        cs.dedup();
    }

    // Grid dimensions (#cells per axis) and total cell count.
    let mut dims = [0usize; D];
    let mut total: usize = 1;
    for i in 0..D {
        dims[i] = coords[i].len().saturating_sub(1);
        if dims[i] == 0 {
            return Some(0.0); // all boxes degenerate along axis i
        }
        total = total.checked_mul(dims[i])?;
        if total > max_cells {
            return None;
        }
    }

    let mut covered = vec![false; total];

    // Row-major strides.
    let mut strides = [0usize; D];
    let mut s = 1;
    for i in (0..D).rev() {
        strides[i] = s;
        s *= dims[i];
    }

    // Mark the cells each box covers.
    for b in &clipped {
        let mut ranges = [(0usize, 0usize); D];
        for i in 0..D {
            let lo = lower_bound(&coords[i], b.lo[i]);
            let hi = lower_bound(&coords[i], b.hi[i]);
            if lo >= hi {
                ranges[i] = (0, 0); // degenerate along axis i: covers nothing
            } else {
                ranges[i] = (lo, hi);
            }
        }
        if ranges.iter().any(|&(lo, hi)| lo == hi) {
            continue;
        }
        // Odometer over the box's cell ranges.
        let mut idx = [0usize; D];
        for i in 0..D {
            idx[i] = ranges[i].0;
        }
        'outer: loop {
            let mut flat = 0;
            for i in 0..D {
                flat += idx[i] * strides[i];
            }
            covered[flat] = true;
            // Advance odometer.
            let mut d = D;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < ranges[d].1 {
                    break;
                }
                idx[d] = ranges[d].0;
            }
        }
    }

    // Sum covered cell volumes.
    let mut vol = 0.0;
    let mut idx = [0usize; D];
    for (flat, &c) in covered.iter().enumerate() {
        if c {
            let mut rem = flat;
            for i in 0..D {
                idx[i] = rem / strides[i];
                rem %= strides[i];
            }
            let mut cell = 1.0;
            for i in 0..D {
                cell *= coords[i][idx[i] + 1] - coords[i][idx[i]];
            }
            vol += cell;
        }
    }
    Some(vol)
}

/// Deterministic Monte-Carlo estimate of the union volume of
/// `boxes ∩ frame` from `samples` uniform points.
pub fn union_volume_mc<const D: usize>(
    frame: &Rect<D>,
    boxes: &[Rect<D>],
    samples: usize,
    seed: u64,
) -> f64 {
    let fv = frame.volume();
    if fv <= 0.0 || samples == 0 || boxes.is_empty() {
        return 0.0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut hits = 0usize;
    let mut p = [0.0; D];
    for _ in 0..samples {
        for (i, c) in p.iter_mut().enumerate() {
            *c = rng.gen_range(frame.lo[i], frame.hi[i]);
        }
        let pt = crate::Point(p);
        if boxes.iter().any(|b| b.contains_point(&pt)) {
            hits += 1;
        }
    }
    fv * hits as f64 / samples as f64
}

/// Union volume of `boxes ∩ frame`: exact when the compressed grid fits the
/// default cell budget, Monte-Carlo otherwise.
pub fn union_volume<const D: usize>(frame: &Rect<D>, boxes: &[Rect<D>]) -> f64 {
    match union_volume_exact_budgeted(frame, boxes, DEFAULT_CELL_BUDGET) {
        Some(v) => v,
        None => union_volume_mc(
            frame,
            boxes,
            DEFAULT_MC_SAMPLES,
            0xCBB0_5EED ^ boxes.len() as u64,
        ),
    }
}

/// Fraction of `frame` that no box covers — the paper's dead-space metric.
///
/// Returns 0 for a degenerate (zero-volume) frame, where the notion is
/// undefined; callers measuring point datasets treat those nodes separately.
pub fn dead_space_fraction<const D: usize>(frame: &Rect<D>, boxes: &[Rect<D>]) -> f64 {
    let fv = frame.volume();
    if fv <= 0.0 {
        return 0.0;
    }
    (1.0 - union_volume(frame, boxes) / fv).clamp(0.0, 1.0)
}

/// Index of the first element `>= key` (coords are sorted, finite).
fn lower_bound(coords: &[f64], key: f64) -> usize {
    coords.partition_point(|&c| c < key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    const FRAME: Rect<2> = Rect {
        lo: Point([0.0, 0.0]),
        hi: Point([10.0, 10.0]),
    };

    #[test]
    fn empty_and_disjoint() {
        assert_eq!(union_volume_exact(&FRAME, &[]), 0.0);
        let outside = r2(20.0, 20.0, 30.0, 30.0);
        assert_eq!(union_volume_exact(&FRAME, &[outside]), 0.0);
    }

    #[test]
    fn single_box() {
        let b = r2(1.0, 1.0, 4.0, 3.0);
        assert_eq!(union_volume_exact(&FRAME, &[b]), 6.0);
    }

    #[test]
    fn overlapping_boxes_counted_once() {
        let a = r2(0.0, 0.0, 5.0, 5.0);
        let b = r2(3.0, 3.0, 8.0, 8.0);
        // 25 + 25 − 4 = 46.
        assert_eq!(union_volume_exact(&FRAME, &[a, b]), 46.0);
    }

    #[test]
    fn identical_boxes() {
        let a = r2(2.0, 2.0, 6.0, 6.0);
        assert_eq!(union_volume_exact(&FRAME, &[a, a, a]), 16.0);
    }

    #[test]
    fn boxes_clipped_to_frame() {
        let partially_out = r2(8.0, 8.0, 15.0, 15.0);
        assert_eq!(union_volume_exact(&FRAME, &[partially_out]), 4.0);
    }

    #[test]
    fn degenerate_boxes_have_zero_volume() {
        let line = r2(1.0, 1.0, 1.0, 9.0);
        let point = Rect::point(Point([5.0, 5.0]));
        assert_eq!(union_volume_exact(&FRAME, &[line, point]), 0.0);
    }

    #[test]
    fn three_d_union() {
        let frame: Rect<3> = Rect::new(Point([0.0; 3]), Point([4.0; 3]));
        let a = Rect::new(Point([0.0; 3]), Point([2.0; 3]));
        let b = Rect::new(Point([1.0; 3]), Point([3.0; 3]));
        // 8 + 8 − 1 = 15.
        assert_eq!(union_volume_exact(&frame, &[a, b]), 15.0);
    }

    #[test]
    fn budget_bailout() {
        let boxes: Vec<Rect<2>> = (0..20)
            .map(|i| {
                let o = i as f64 * 0.3;
                r2(o, o, o + 1.0, o + 1.0)
            })
            .collect();
        assert!(union_volume_exact_budgeted(&FRAME, &boxes, 4).is_none());
        assert!(union_volume_exact_budgeted(&FRAME, &boxes, 100_000).is_some());
    }

    #[test]
    fn mc_estimate_close_to_exact() {
        let boxes = [r2(0.0, 0.0, 5.0, 5.0), r2(3.0, 3.0, 8.0, 8.0)];
        let exact = union_volume_exact(&FRAME, &boxes);
        let mc = union_volume_mc(&FRAME, &boxes, 50_000, 1);
        assert!(
            (mc - exact).abs() / exact < 0.05,
            "mc = {mc}, exact = {exact}"
        );
    }

    #[test]
    fn mc_deterministic() {
        let boxes = [r2(0.0, 0.0, 5.0, 5.0)];
        let a = union_volume_mc(&FRAME, &boxes, 1_000, 9);
        let b = union_volume_mc(&FRAME, &boxes, 1_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn dead_space_basics() {
        // Half the frame covered → 50 % dead.
        let half = r2(0.0, 0.0, 5.0, 10.0);
        let ds = dead_space_fraction(&FRAME, &[half]);
        assert!((ds - 0.5).abs() < 1e-12);
        // Fully covered → 0 % dead.
        assert_eq!(dead_space_fraction(&FRAME, &[FRAME]), 0.0);
        // Nothing covered → 100 % dead.
        assert_eq!(dead_space_fraction(&FRAME, &[]), 1.0);
        // Degenerate frame → defined as 0.
        let flat = r2(0.0, 0.0, 10.0, 0.0);
        assert_eq!(dead_space_fraction(&flat, &[]), 0.0);
    }

    #[test]
    fn auto_matches_exact_when_cheap() {
        let boxes = [r2(1.0, 1.0, 2.0, 2.0), r2(4.0, 4.0, 6.0, 9.0)];
        assert_eq!(
            union_volume(&FRAME, &boxes),
            union_volume_exact(&FRAME, &boxes)
        );
    }
}
