//! Property-based tests for the geometry substrate.

use cbb_geom::{
    dominates, dominates_eq, union_volume_exact, union_volume_mc, CornerMask, Point, Rect,
};
use proptest::prelude::*;

fn arb_point2() -> impl Strategy<Value = Point<2>> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point([x, y]))
}

fn arb_rect2() -> impl Strategy<Value = Rect<2>> {
    (arb_point2(), arb_point2()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_rect3() -> impl Strategy<Value = Rect<3>> {
    (
        -50.0f64..50.0,
        -50.0f64..50.0,
        -50.0f64..50.0,
        0.0f64..20.0,
        0.0f64..20.0,
        0.0f64..20.0,
    )
        .prop_map(|(x, y, z, ex, ey, ez)| {
            Rect::new(Point([x, y, z]), Point([x + ex, y + ey, z + ez]))
        })
}

fn arb_mask2() -> impl Strategy<Value = CornerMask> {
    (0u8..4).prop_map(CornerMask::new)
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_rect2(), b in arb_rect2()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.volume() >= a.volume().max(b.volume()));
    }

    #[test]
    fn intersection_commutes_and_is_contained(a in arb_rect2(), b in arb_rect2()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!((i.volume() - a.overlap_volume(&b)).abs() < 1e-9);
        } else {
            prop_assert_eq!(a.overlap_volume(&b), 0.0);
        }
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect2(), b in arb_rect2()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        prop_assert!(a.margin_enlargement(&b) >= -1e-12);
    }

    #[test]
    fn corners_are_contained(r in arb_rect2(), bits in 0u8..4) {
        let c = r.corner(CornerMask::new(bits));
        prop_assert!(r.contains_point(&c));
    }

    #[test]
    fn dominance_antisymmetric(p in arb_point2(), q in arb_point2(), b in arb_mask2()) {
        prop_assert!(!(dominates(&p, &q, b) && dominates(&q, &p, b)));
    }

    #[test]
    fn dominance_transitive(
        p in arb_point2(),
        q in arb_point2(),
        r in arb_point2(),
        b in arb_mask2(),
    ) {
        if dominates(&p, &q, b) && dominates(&q, &r, b) {
            prop_assert!(dominates(&p, &r, b));
        }
    }

    #[test]
    fn dominance_is_corner_mbb_membership(
        r in arb_rect2(),
        fp in (0.0f64..=1.0, 0.0f64..=1.0),
        fq in (0.0f64..=1.0, 0.0f64..=1.0),
        b in arb_mask2(),
    ) {
        // p ≺_b q ⟺ p ∈ MBB({q, R^b}) ∧ p ≠ q (Def. 4 restated). The
        // equivalence presumes p, q ∈ R, so generate both inside r.
        let p = Point([
            r.lo[0] + fp.0 * r.extent(0),
            r.lo[1] + fp.1 * r.extent(1),
        ]);
        let q = Point([
            r.lo[0] + fq.0 * r.extent(0),
            r.lo[1] + fq.1 * r.extent(1),
        ]);
        let corner = r.corner(b);
        let region = Rect::from_corners(q, corner);
        prop_assert_eq!(dominates(&p, &q, b), region.contains_point(&p) && p != q);
    }

    #[test]
    fn dominates_eq_reflexive_and_weaker(p in arb_point2(), q in arb_point2(), b in arb_mask2()) {
        prop_assert!(dominates_eq(&p, &p, b));
        if dominates(&p, &q, b) {
            prop_assert!(dominates_eq(&p, &q, b));
        }
    }

    #[test]
    fn flipping_mask_flips_dominance(p in arb_point2(), q in arb_point2(), b in arb_mask2()) {
        prop_assert_eq!(dominates(&p, &q, b), dominates(&q, &p, b.flipped::<2>()));
    }

    #[test]
    fn union_volume_bounds_2d(boxes in prop::collection::vec(arb_rect2(), 0..12)) {
        let frame = Rect::new(Point([-100.0, -100.0]), Point([100.0, 100.0]));
        let v = union_volume_exact(&frame, &boxes);
        prop_assert!(v >= -1e-9);
        prop_assert!(v <= frame.volume() + 1e-9);
        // At least as large as the single largest clipped box.
        let max_single = boxes
            .iter()
            .filter_map(|b| b.intersection(&frame))
            .map(|b| b.volume())
            .fold(0.0f64, f64::max);
        prop_assert!(v + 1e-9 >= max_single);
        // At most the sum of clipped volumes.
        let sum: f64 = boxes
            .iter()
            .filter_map(|b| b.intersection(&frame))
            .map(|b| b.volume())
            .sum();
        prop_assert!(v <= sum + 1e-9);
    }

    #[test]
    fn union_volume_monotone(boxes in prop::collection::vec(arb_rect2(), 1..10), extra in arb_rect2()) {
        let frame = Rect::new(Point([-100.0, -100.0]), Point([100.0, 100.0]));
        let v1 = union_volume_exact(&frame, &boxes);
        let mut more = boxes.clone();
        more.push(extra);
        let v2 = union_volume_exact(&frame, &more);
        prop_assert!(v2 + 1e-9 >= v1);
    }

    #[test]
    fn union_volume_bounds_3d(boxes in prop::collection::vec(arb_rect3(), 0..8)) {
        let frame = Rect::new(Point([-50.0; 3]), Point([70.0; 3]));
        let v = union_volume_exact(&frame, &boxes);
        let sum: f64 = boxes
            .iter()
            .filter_map(|b| b.intersection(&frame))
            .map(|b| b.volume())
            .sum();
        prop_assert!(v >= -1e-9 && v <= sum + 1e-9);
    }

    #[test]
    fn mc_within_tolerance_of_exact(boxes in prop::collection::vec(arb_rect2(), 1..6)) {
        let frame = Rect::new(Point([-100.0, -100.0]), Point([100.0, 100.0]));
        let exact = union_volume_exact(&frame, &boxes);
        let mc = union_volume_mc(&frame, &boxes, 20_000, 42);
        // MC error on a [0,1] fraction with 20k samples: ~3σ ≈ 0.011.
        prop_assert!((mc - exact).abs() / frame.volume() < 0.02);
    }
}
