//! End-to-end integration tests spanning every crate: generated datasets →
//! variant trees → clipping → queries / joins / disk persistence, checked
//! against brute-force oracles and the paper's qualitative claims.

use clipped_bbox::datasets::{self, QueryProfile, Scale};
use clipped_bbox::joins::{brute_force_pairs, inlj, stt};
use clipped_bbox::prelude::*;
use clipped_bbox::storage::{DiskRTree, MemPageStore};

fn build_clipped2(
    data: &datasets::Dataset<2>,
    variant: Variant,
    method: ClipMethod,
) -> ClippedRTree<2> {
    let config = TreeConfig::paper_default(variant).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    tree.validate().unwrap();
    ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(method))
}

#[test]
fn pipeline_query_correctness_all_variants() {
    let data = datasets::dataset2("par02", Scale::Exact(5_000));
    let mut counter = |q: &Rect<2>| data.boxes.iter().filter(|b| b.intersects(q)).count();
    let queries = datasets::generate_queries(&data, QueryProfile::QR1, 60, 11, &mut counter);
    for variant in Variant::ALL {
        for method in [ClipMethod::Skyline, ClipMethod::Stairline] {
            let clipped = build_clipped2(&data, variant, method);
            clipped.verify_clips().unwrap();
            for q in &queries {
                let mut expected: Vec<u32> = data
                    .boxes
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.intersects(q))
                    .map(|(i, _)| i as u32)
                    .collect();
                let mut got: Vec<u32> = clipped.range_query(q).iter().map(|d| d.0).collect();
                expected.sort();
                got.sort();
                assert_eq!(got, expected, "{variant:?}/{method:?}");
            }
        }
    }
}

#[test]
fn clipping_saves_io_on_every_variant_for_neuro_data() {
    // The paper's headline on its motivating data: selective queries over
    // skinny 3-d boxes save leaf I/O under clipping, on every variant.
    let data = datasets::dataset3("axo03", Scale::Exact(12_000));
    for variant in Variant::ALL {
        let config = TreeConfig::paper_default(variant).with_world(data.domain);
        let tree = RTree::bulk_load(config, &data.items());
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Stairline));
        let mut counter = |q: &Rect<3>| clipped.tree.range_query(q).len();
        let queries = datasets::generate_queries(&data, QueryProfile::QR0, 150, 5, &mut counter);
        let mut base = AccessStats::new();
        let mut with = AccessStats::new();
        for q in &queries {
            clipped.tree.range_query_stats(q, &mut base);
            clipped.range_query_stats(q, &mut with);
        }
        assert!(
            with.leaf_accesses < base.leaf_accesses,
            "{variant:?}: no I/O savings ({} vs {})",
            with.leaf_accesses,
            base.leaf_accesses
        );
    }
}

#[test]
fn stairline_saves_at_least_as_much_as_skyline_in_aggregate() {
    let data = datasets::dataset3("den03", Scale::Exact(10_000));
    let config = TreeConfig::paper_default(Variant::RStar).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    let sky = ClippedRTree::from_tree(
        tree.clone(),
        ClipConfig::paper_default::<3>(ClipMethod::Skyline),
    );
    let sta = ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Stairline));
    let mut counter = |q: &Rect<3>| sky.tree.range_query(q).len();
    let queries = datasets::generate_queries(&data, QueryProfile::QR0, 200, 13, &mut counter);
    let mut s_sky = AccessStats::new();
    let mut s_sta = AccessStats::new();
    for q in &queries {
        sky.range_query_stats(q, &mut s_sky);
        sta.range_query_stats(q, &mut s_sta);
    }
    assert!(
        s_sta.leaf_accesses <= s_sky.leaf_accesses,
        "stairline ({}) worse than skyline ({})",
        s_sta.leaf_accesses,
        s_sky.leaf_accesses
    );
}

#[test]
fn updates_after_bulk_load_stay_correct_and_clipped() {
    let data = datasets::dataset2("rea02", Scale::Exact(4_000));
    let (build, inserts) = data.boxes.split_at(3_000);
    let items: Vec<(Rect<2>, DataId)> = build
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, DataId(i as u32)))
        .collect();
    let config = TreeConfig::paper_default(Variant::RStar).with_world(data.domain);
    let tree = RTree::bulk_load(config, &items);
    let mut clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));

    for (i, b) in inserts.iter().enumerate() {
        clipped.insert(*b, DataId(3_000 + i as u32));
    }
    // Delete a slice of the originals.
    for (i, b) in build.iter().enumerate().take(500) {
        assert!(clipped.delete(b, DataId(i as u32)));
    }
    clipped.tree.validate().unwrap();
    clipped.verify_clips().unwrap();
    assert_eq!(clipped.tree.len(), 3_000 + inserts.len() - 500);
    assert!(clipped.maintenance.total_reclips() > 0);
    assert!(clipped.maintenance.validity_tests > 0);
}

#[test]
fn disk_tree_round_trip_matches_memory() {
    let data = datasets::dataset2("par02", Scale::Exact(6_000));
    let clipped = build_clipped2(&data, Variant::Hilbert, ClipMethod::Stairline);
    let mut store = MemPageStore::new();
    let mut disk = DiskRTree::persist(&clipped, &mut store, 32);
    let mut counter = |q: &Rect<2>| clipped.tree.range_query(q).len();
    let queries = datasets::generate_queries(&data, QueryProfile::QR1, 40, 17, &mut counter);
    for q in &queries {
        let mut expected = clipped.range_query(q);
        let (mut got, stats) = disk.range_query(&mut store, q, true);
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        assert!(stats.page_requests > 0);
    }
}

#[test]
fn joins_agree_with_brute_force_on_generated_data() {
    // Proportional Exact counts (axo:den paper ratio ≈ 1.995) keep the
    // registry's density-restoring contraction factors equal, so the
    // shared circuit hotspots of the two datasets stay co-located and the
    // join is non-trivial.
    let axons = datasets::dataset3("axo03", Scale::Exact(16_000));
    let dendrites = datasets::dataset3("den03", Scale::Exact(8_020));
    let expected = brute_force_pairs(&axons.boxes, &dendrites.boxes);
    assert!(expected > 0, "test inputs must actually join");

    let build = |d: &datasets::Dataset<3>| {
        let config = TreeConfig::paper_default(Variant::RRStar).with_world(d.domain);
        ClippedRTree::from_tree(
            RTree::bulk_load(config, &d.items()),
            ClipConfig::paper_default::<3>(ClipMethod::Stairline),
        )
    };
    let left = build(&axons);
    let right = build(&dendrites);

    let inlj_res = inlj(&dendrites.boxes, &left, true);
    assert_eq!(inlj_res.pairs, expected);

    let stt_res = stt(&left, &right, true);
    assert_eq!(stt_res.pairs, expected);

    // STT must beat INLJ in total leaf accesses (the paper's observation).
    let stt_total = stt_res.leaf_accesses_left + stt_res.leaf_accesses_right;
    assert!(
        stt_total < inlj_res.leaf_accesses_right,
        "STT {} vs INLJ {}",
        stt_total,
        inlj_res.leaf_accesses_right
    );
}

#[test]
fn point_dataset_pipeline() {
    // rea03 is pure points; the entire pipeline must handle degenerate
    // boxes.
    let data = datasets::dataset3("rea03", Scale::Exact(8_000));
    let config = TreeConfig::paper_default(Variant::Quadratic).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    let clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Stairline));
    clipped.verify_clips().unwrap();
    let mut counter = |q: &Rect<3>| clipped.tree.range_query(q).len();
    let queries = datasets::generate_queries(&data, QueryProfile::QR2, 30, 23, &mut counter);
    for q in &queries {
        let mut base = clipped.tree.range_query(q);
        let mut with = clipped.range_query(q);
        base.sort();
        with.sort();
        assert_eq!(base, with);
    }
}
