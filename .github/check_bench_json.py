#!/usr/bin/env python3
"""Sanity-check the BENCH_*.json artifacts the bench bins emit.

Every report must parse as JSON and contain at least one non-empty array
of row objects (the shapes differ per bin: `runs`, `rows`, or the
`parallel` arrays inside `join`/`batch`). A bin that silently wrote an
empty or truncated report fails the job here instead of shipping a
useless artifact.

`BENCH_obs.json` is scalar-shaped instead of row-shaped and carries a
hard bound: the telemetry counter overhead ratio must stay below 1.05
(instrumentation may not induce extra engine work).

`BENCH_durability.json` carries recovery-oracle gates on every row:
WAL records must actually replay, snapshot pages must actually be
read, and the recovered service's answers must have compared identical
to the never-restarted reference.

`BENCH_engine.json` carries the join-algorithm head-to-head gates:
every algorithm must report the same pair count as the sequential
baseline, and the plane sweep must perform strictly fewer overlap
tests than INLJ (the machine-independent claim the sweep exists to
make — wall-clock is reported but never gated).

`BENCH_fusion.json` carries the shared-scan batched-execution gates:
fused answers must have compared byte-identical to per-query descents
on every row, fused tiles must do zero tree node accesses, and at the
widest batch (>= 32 must be present) the fused path must do strictly
less total counted work (node accesses + overlap tests) than the
per-query path — again machine-independent, wall-clock never gated.
"""

import json
import os
import sys

OBS_MAX_OVERHEAD = 1.05


def check_obs(path, doc):
    """Validate the observability report's gated fields."""
    errors = []
    ratio = doc.get("counter_overhead_ratio")
    if not isinstance(ratio, (int, float)):
        errors.append("missing counter_overhead_ratio")
    elif ratio >= OBS_MAX_OVERHEAD:
        errors.append(
            f"counter_overhead_ratio {ratio} >= {OBS_MAX_OVERHEAD}"
        )
    families = doc.get("metric_families")
    if not isinstance(families, int) or families < 15:
        errors.append(f"metric_families {families!r} < 15")
    slow = doc.get("slow_ring_entries")
    if not isinstance(slow, int) or slow < 1:
        errors.append(f"slow_ring_entries {slow!r} < 1")
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if not errors:
        print(
            f"{path}: OK (overhead {ratio}, {families} families, "
            f"{slow} slow entries)"
        )
    return bool(errors)


def check_durability(path, doc):
    """Validate the durability report's recovery-oracle gates."""
    errors = []
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("missing or empty rows array")
        rows = []
    for row in rows:
        label = f"row batches={row.get('batches')!r}"
        replayed = row.get("records_replayed")
        if not isinstance(replayed, int) or replayed <= 0:
            errors.append(f"{label}: records_replayed {replayed!r} <= 0")
        pages = row.get("pages_read")
        if not isinstance(pages, int) or pages <= 0:
            errors.append(f"{label}: pages_read {pages!r} <= 0")
        if row.get("recovered_answers_identical") != 1:
            errors.append(
                f"{label}: recovered_answers_identical "
                f"{row.get('recovered_answers_identical')!r} != 1"
            )
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if not errors:
        replayed = sum(row["records_replayed"] for row in rows)
        print(
            f"{path}: OK ({len(rows)} rows, {replayed} records replayed, "
            f"all recoveries identical)"
        )
    return bool(errors)


def check_engine(path, doc):
    """Validate the engine report's join-algorithm gates."""
    errors = []
    algos = doc.get("algos")
    if not isinstance(algos, list) or not algos:
        errors.append("missing or empty algos array")
        algos = []
    by_name = {row.get("algo"): row for row in algos}
    missing = {"stt", "inlj", "sweep", "auto"} - set(by_name)
    if missing:
        errors.append(f"algos array lacks rows for {sorted(missing)}")
    seq_pairs = doc.get("join", {}).get("sequential", {}).get("pairs")
    for row in algos:
        label = f"algo {row.get('algo')!r}"
        if row.get("pairs") != seq_pairs:
            errors.append(
                f"{label}: pairs {row.get('pairs')!r} != sequential {seq_pairs!r}"
            )
        tiles = sum(
            row.get(key, 0) for key in ("tiles_stt", "tiles_inlj", "tiles_sweep")
        )
        if not isinstance(tiles, int) or tiles <= 0:
            errors.append(f"{label}: no tiles were joined ({tiles!r})")
    if not missing:
        sweep = by_name["sweep"].get("overlap_tests")
        inlj = by_name["inlj"].get("overlap_tests")
        if not isinstance(sweep, int) or not isinstance(inlj, int):
            errors.append("overlap_tests missing on sweep or inlj row")
        elif sweep >= inlj:
            errors.append(f"sweep overlap_tests {sweep} >= inlj {inlj}")
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if not errors:
        print(
            f"{path}: OK ({len(algos)} algos agree on {seq_pairs} pairs, "
            f"sweep {sweep} < inlj {inlj} overlap tests)"
        )
    return bool(errors)


def check_fusion(path, doc):
    """Validate the shared-scan fusion report's counter gates."""
    errors = []
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append("missing or empty rows array")
        rows = []
    for row in rows:
        label = f"row batch={row.get('batch')!r}"
        if row.get("answers_identical") != 1:
            errors.append(
                f"{label}: answers_identical "
                f"{row.get('answers_identical')!r} != 1"
            )
        if row.get("fused_node_accesses") != 0:
            errors.append(
                f"{label}: fused_node_accesses "
                f"{row.get('fused_node_accesses')!r} != 0"
            )
    wide = [row for row in rows if isinstance(row.get("batch"), int)]
    if not any(row["batch"] >= 32 for row in wide):
        errors.append("no row with batch >= 32")
    elif not errors:
        top = max(wide, key=lambda row: row["batch"])
        descend = top["descend_node_accesses"] + top["descend_overlap_tests"]
        fused = top["fused_node_accesses"] + top["fused_overlap_tests"]
        if fused >= descend:
            errors.append(
                f"batch {top['batch']}: fused work {fused} >= "
                f"per-query work {descend}"
            )
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if not errors:
        print(
            f"{path}: OK ({len(rows)} batch sizes, answers identical, "
            f"fused work {fused} < per-query {descend} at batch "
            f"{top['batch']})"
        )
    return bool(errors)


def row_arrays(node):
    """Yield every list-of-dicts found anywhere in the document."""
    if isinstance(node, list):
        if node and all(isinstance(item, dict) for item in node):
            yield node
        for item in node:
            yield from row_arrays(item)
    elif isinstance(node, dict):
        for value in node.values():
            yield from row_arrays(value)


def main(paths):
    if not paths:
        print("no BENCH_*.json files were produced", file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: does not parse: {err}", file=sys.stderr)
            failed = True
            continue
        if os.path.basename(path) == "BENCH_obs.json":
            failed |= check_obs(path, doc)
            continue
        if os.path.basename(path) == "BENCH_durability.json":
            failed |= check_durability(path, doc)
            continue
        if os.path.basename(path) == "BENCH_engine.json":
            failed |= check_engine(path, doc)
            continue
        if os.path.basename(path) == "BENCH_fusion.json":
            failed |= check_fusion(path, doc)
            continue
        arrays = list(row_arrays(doc))
        if not arrays:
            print(f"{path}: parses but holds no non-empty row arrays", file=sys.stderr)
            failed = True
            continue
        rows = sum(len(a) for a in arrays)
        print(f"{path}: OK ({len(arrays)} row arrays, {rows} rows)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
