#!/usr/bin/env python3
"""Sanity-check the BENCH_*.json artifacts the bench bins emit.

Every report must parse as JSON and contain at least one non-empty array
of row objects (the shapes differ per bin: `runs`, `rows`, or the
`parallel` arrays inside `join`/`batch`). A bin that silently wrote an
empty or truncated report fails the job here instead of shipping a
useless artifact.
"""

import json
import sys


def row_arrays(node):
    """Yield every list-of-dicts found anywhere in the document."""
    if isinstance(node, list):
        if node and all(isinstance(item, dict) for item in node):
            yield node
        for item in node:
            yield from row_arrays(item)
    elif isinstance(node, dict):
        for value in node.values():
            yield from row_arrays(value)


def main(paths):
    if not paths:
        print("no BENCH_*.json files were produced", file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: does not parse: {err}", file=sys.stderr)
            failed = True
            continue
        arrays = list(row_arrays(doc))
        if not arrays:
            print(f"{path}: parses but holds no non-empty row arrays", file=sys.stderr)
            failed = True
            continue
        rows = sum(len(a) for a in arrays)
        print(f"{path}: OK ({len(arrays)} row arrays, {rows} rows)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
