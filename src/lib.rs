//! # clipped-bbox — Clipping Minimum Bounding Boxes
//!
//! A complete Rust reproduction of *"Improving Spatial Data Processing by
//! Clipping Minimum Bounding Boxes"* (Šidlauskas, Chester, Tzirita
//! Zacharatou, Ailamaki — ICDE 2018).
//!
//! Minimum bounding boxes waste most of their volume on *dead space*.
//! This library augments each MBB with a handful of **clip points** — a
//! point plus a corner mask declaring a rectangular corner region empty —
//! and plugs them into four R-tree variants (Guttman quadratic, Hilbert,
//! R\*, revised R\*) as a pure side-table: the base index layout is
//! untouched, queries gain one cheap dominance test per visited child, and
//! leaf I/O drops by double-digit percentages.
//!
//! ## Quick start
//!
//! ```
//! use clipped_bbox::prelude::*;
//!
//! // Index a few boxes with an R*-tree.
//! let mut tree: RTree<2> = RTree::new(TreeConfig::paper_default(Variant::RStar));
//! for (i, (x, y)) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)].iter().enumerate() {
//!     let b = Rect::new(Point([*x, *y]), Point([x + 1.0, y + 1.0]));
//!     tree.insert(b, DataId(i as u32));
//! }
//!
//! // Attach clipped bounding boxes (stairline flavour, paper defaults).
//! let clipped = ClippedRTree::from_tree(
//!     tree,
//!     ClipConfig::paper_default::<2>(ClipMethod::Stairline),
//! );
//!
//! // Clipped queries return exactly the same results with fewer I/Os.
//! let q = Rect::new(Point([-1.0, -1.0]), Point([2.0, 2.0]));
//! assert_eq!(clipped.range_query(&q), vec![DataId(0)]);
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`geom`] | `cbb-geom` | points, rects, corner masks, dominance, union volumes |
//! | [`core`] | `cbb-core` | skylines, stairlines, Algorithm 1 & 2, [`Cbb`](core::Cbb) |
//! | [`rtree`] | `cbb-rtree` | the four variants, metrics, the clipped plug-in |
//! | [`storage`] | `cbb-storage` | pages, codecs, buffer pool, disk trees |
//! | [`datasets`] | `cbb-datasets` | the seven benchmark dataset stand-ins + queries |
//! | [`bounding`] | `cbb-bounding` | MBC / RMBB / k-corner / hull comparisons |
//! | [`joins`] | `cbb-joins` | INLJ and STT spatial joins |
//! | [`engine`] | `cbb-engine` | parallel partitioned join + batched query execution |
//! | [`serve`] | `cbb-serve` | async query service: request queue → micro-batched executor |
//! | [`telemetry`] | `cbb-telemetry` | metrics registry, phase tracing, slow-query ring, scrape exposition |

pub use cbb_bounding as bounding;
pub use cbb_core as core;
pub use cbb_datasets as datasets;
pub use cbb_engine as engine;
pub use cbb_geom as geom;
pub use cbb_joins as joins;
pub use cbb_rtree as rtree;
pub use cbb_serve as serve;
pub use cbb_storage as storage;
pub use cbb_telemetry as telemetry;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use cbb_core::{Cbb, ClipConfig, ClipMethod, ClipPoint};
    pub use cbb_engine::{
        parallel_range_queries, partitioned_join, partitioned_join_forests, partitioned_join_with,
        AdaptiveGrid, AnyPartitioner, BatchExecutor, BatchOutcome, Catalog, CatalogError,
        CompactionPolicy, DataVersion, DatasetId, DatasetStore, ForestCache, ForestKey, JoinAlgo,
        JoinPlan, KnnOutcome, Partitioner, QuadtreePartitioner, SplitPolicy, TileForest,
        UniformGrid, Update, UpdateOutcome, UpdateResult,
    };
    pub use cbb_geom::{CornerMask, Point, Rect};
    pub use cbb_joins::JoinResult;
    pub use cbb_rtree::{
        AccessStats, ClippedRTree, DataId, Neighbor, NodeId, RTree, TreeConfig, Variant,
    };
    pub use cbb_serve::{
        DatasetClient, DatasetReport, DurabilityConfig, InProcessShard, QueryService, Request,
        RequestError, RequestKind, Response, Scrape, ServiceBuilder, ServiceConfig, ServiceReport,
        Shard, ShardFitting, ShardMap, ShardTiling, ShardedService, SubmitRequest, UpdateSummary,
        DEFAULT_DATASET,
    };
    pub use cbb_telemetry::{
        Histogram, HistogramSnapshot, Phase, PhaseTimer, Registry, SlowQuery, SlowQueryRing, Span,
        TelemetryConfig, TelemetrySnapshot,
    };
}
