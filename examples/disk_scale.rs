//! Disk-resident queries under memory pressure — a scaled-down rendition
//! of the paper's billion-object experiment (Figure 15): the index far
//! exceeds the buffer pool, queries fault pages in from a real page file,
//! and clipping cuts the faults.
//!
//! ```text
//! cargo run --release --example disk_scale
//! ```

use clipped_bbox::datasets::{self, Scale};
use clipped_bbox::prelude::*;
use clipped_bbox::storage::{DiskRTree, FilePageStore, PageStore};

fn main() {
    let data = datasets::dataset2("par02", Scale::Exact(200_000));
    println!("dataset: {} with {} objects", data.name, data.len());

    let config = TreeConfig::paper_default(Variant::Hilbert).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    let clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));

    // Persist to an actual page file under target/.
    let dir = std::env::temp_dir().join("cbb_disk_scale");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("hr_tree.pages");
    let mut store = FilePageStore::create(&path).expect("page file");
    // A pool of 64 pages (256 KiB) against thousands of pages: the paper's
    // "index ≫ memory" regime.
    let mut disk = DiskRTree::persist(&clipped, &mut store, 64);
    println!(
        "persisted {} pages ({} MiB) at {}",
        store.page_count(),
        store.page_count() as usize * 4096 / (1024 * 1024),
        path.display()
    );

    let mut counter = |q: &Rect<2>| clipped.tree.range_query(q).len();
    let queries =
        datasets::generate_queries(&data, datasets::QueryProfile::QR1, 500, 3, &mut counter);

    for use_clips in [false, true] {
        disk.drop_caches();
        let start = std::time::Instant::now();
        let mut faults = 0u64;
        let mut results = 0u64;
        for q in &queries {
            let (found, stats) = disk.range_query(&mut store, q, use_clips);
            faults += stats.page_faults;
            results += found.len() as u64;
        }
        println!(
            "{}: {} page faults, {} results, {:.1} ms for {} queries",
            if use_clips { "clipped  " } else { "unclipped" },
            faults,
            results,
            start.elapsed().as_secs_f64() * 1e3,
            queries.len()
        );
    }
    std::fs::remove_file(&path).ok();
}
