//! A long-running query service in front of the partitioned engine:
//! clients submit range / kNN / join requests onto a bounded queue,
//! dispatchers coalesce them into micro-batches, and the version-keyed
//! tile-tree cache makes repeated joins free of rebuild cost until the
//! data actually changes.
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use std::time::Duration;

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::engine::AdaptiveGrid;
use clipped_bbox::prelude::*;

fn main() {
    // The dataset: clustered boxes, the shape that makes partitioning
    // (and therefore per-tile tree caching) worth having.
    let n = 10_000;
    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 7, 7);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    println!("dataset: {n} clustered boxes, adaptive 6×6 partitioning");

    // Start the service: trees are partitioned and bulk-loaded ONCE,
    // then every request is served from them.
    let service = QueryService::start(
        ServiceConfig {
            batch_max: 32,
            batch_deadline: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
        partitioner,
        data.boxes.clone(),
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let dataset = service.default_dataset();

    // A burst of mixed requests, submitted before anything is awaited —
    // the micro-batcher coalesces them into shared executor runs.
    let center = data.boxes[0].center();
    let window = Rect::new(
        Point([center[0] - 30_000.0, center[1] - 30_000.0]),
        Point([center[0] + 30_000.0, center[1] + 30_000.0]),
    );
    let range = service
        .submit(Request::Range {
            dataset,
            query: window,
            use_clips: true,
        })
        .expect("service is open");
    let knn = service
        .submit(Request::Knn {
            dataset,
            center,
            k: 5,
        })
        .expect("service is open");
    let probes: Vec<Rect<2>> = data.boxes.iter().step_by(50).copied().collect();
    let join = |algo| {
        service
            .submit(Request::Join {
                dataset,
                probes: probes.clone(),
                algo,
                use_clips: true,
            })
            .expect("service is open")
    };
    let join1 = join(JoinAlgo::Stt);
    let join2 = join(JoinAlgo::Stt); // identical request: cache hit

    let found = range.wait().unwrap();
    println!(
        "range  : {} objects in a 60k-unit window (batch of {}, {:.2} ms latency)",
        found.response.clone().into_range().len(),
        found.batch_size,
        found.latency().as_secs_f64() * 1e3,
    );
    let nn = knn.wait().unwrap().response.into_knn();
    println!(
        "knn    : 5 nearest, distances {:.0} .. {:.0}",
        nn.first().unwrap().1.sqrt(),
        nn.last().unwrap().1.sqrt(),
    );
    let j1 = join1.wait().unwrap().response.into_join();
    let j2 = join2.wait().unwrap().response.into_join();
    assert_eq!(j1, j2, "repeat joins answer identically");
    println!(
        "join   : {} pairs ({} probes ⋈ dataset), twice",
        j1.pairs,
        probes.len()
    );

    // Replace the dataset: the version bumps, the next request rebuilds.
    service.swap_data(data.boxes[..n / 2].to_vec());
    let shrunk = join(JoinAlgo::Stt).wait().unwrap().response.into_join();
    println!("swap   : half the data → {} pairs", shrunk.pairs);
    assert!(shrunk.pairs < j1.pairs);

    let report = service.shutdown();
    println!(
        "report : {} requests, {} batches (mean {:.2}, max {}), \
         {} tile-forest builds / {} cache hits",
        report.completed,
        report.batches,
        report.mean_batch,
        report.max_batch,
        report.forest_builds,
        report.forest_hits,
    );
    assert_eq!(report.completed, report.submitted);
    assert_eq!(
        report.forest_builds, 2,
        "one build at start, one after swap_data — never per join"
    );
}
