//! The paper's motivating use case (Human Brain Project): range queries
//! over millions of axon segments, where MBBs are ≈94 % dead space and
//! clipping shines brightest.
//!
//! ```text
//! cargo run --release --example neuroscience
//! ```

use clipped_bbox::datasets::{self, Scale};
use clipped_bbox::prelude::*;
use clipped_bbox::rtree::metrics::{avg_dead_space, NodeScope};

fn main() {
    // Axon-segment stand-in (long, skinny, oriented 3-d boxes).
    let data = datasets::dataset3("axo03", Scale::Exact(80_000));
    println!("dataset: {} with {} segment boxes", data.name, data.len());

    // The revised R*-tree is the strongest baseline — clip that.
    let config = TreeConfig::paper_default(Variant::RRStar).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    let dead = avg_dead_space(&tree, NodeScope::Leaves).unwrap_or(0.0);
    println!(
        "RR*-tree: {} nodes, height {}; avg leaf dead space {:.1}% (paper: ~94%)",
        tree.node_count(),
        tree.height(),
        100.0 * dead
    );

    for method in [ClipMethod::Skyline, ClipMethod::Stairline] {
        let clipped = ClippedRTree::from_tree(tree.clone(), ClipConfig::paper_default::<3>(method));
        let (ds, cl) = clipped
            .avg_dead_space_and_clipped(NodeScope::Leaves)
            .unwrap();
        println!(
            "{}: {:.2} clips/node clip away {:.1}% of node volume ({:.0}% of dead space)",
            method.label(),
            clipped.avg_clips_per_node(),
            100.0 * cl,
            100.0 * cl / ds.max(1e-9)
        );

        // Selective queries: a microscope-style box probe around dense
        // tissue regions.
        let mut counter = |q: &Rect<3>| clipped.tree.range_query(q).len();
        let queries =
            datasets::generate_queries(&data, datasets::QueryProfile::QR1, 300, 7, &mut counter);
        let mut base = AccessStats::new();
        let mut clip = AccessStats::new();
        for q in &queries {
            clipped.tree.range_query_stats(q, &mut base);
            clipped.range_query_stats(q, &mut clip);
        }
        println!(
            "  QR1 queries: {} → {} leaf accesses ({:.1}% of unclipped)",
            base.leaf_accesses,
            clip.leaf_accesses,
            100.0 * clip.leaf_accesses as f64 / base.leaf_accesses as f64
        );
    }
}
