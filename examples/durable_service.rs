//! Durability end to end: a service persists its catalog as snapshot +
//! write-ahead log, "crashes" (is dropped without a clean shutdown
//! path mattering — every acked write is already fsynced), and a
//! second service recovers the full catalog from disk and picks up
//! exactly where the first left off.
//!
//! ```text
//! cargo run --release --example durable_service
//! ```

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::prelude::*;

fn main() {
    let data = clustered_with_layout::<2>(10_000, 6, 30_000.0, 0.15, 7, 7);
    let partitioner = UniformGrid::new(data.domain, 4);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let root = std::env::temp_dir().join(format!("durable_service_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ── First life: create, write, "crash". ────────────────────────
    // The builder's `durability` knob turns persistence on; everything
    // else about the service is unchanged.
    let service =
        ServiceBuilder::new()
            .durability(&root)
            .build(partitioner, data.boxes.clone(), tree, clip);
    let dataset = service.default_dataset();
    for i in 0..25u32 {
        let x = f64::from(i) * 1_000.0;
        let summary = service
            .submit(Request::UpdateBatch {
                dataset,
                updates: vec![Update::Insert(Rect::new(
                    Point([x, x]),
                    Point([x + 500.0, x + 500.0]),
                ))],
            })
            .expect("service is open")
            .wait()
            .expect("write served")
            .response;
        // The moment this response arrived, the WAL record behind it
        // was already fsynced: an acknowledgement is a promise.
        assert!(matches!(summary, Response::Updated(_)));
    }
    let report = service.shutdown();
    println!(
        "first life : {} WAL records fsynced, {} checkpoints, version {:?}",
        report.wal_appends, report.checkpoints, report.datasets[0].version,
    );
    let pre_crash_version = report.datasets[0].version;
    let pre_crash_live = report.datasets[0].live_objects;

    // ── Second life: recover from the directory alone. ─────────────
    // Objects and partitioner passed here are ignored: the recovered
    // default dataset wins.
    let service =
        ServiceBuilder::new()
            .durability(&root)
            .build(partitioner, Vec::new(), tree, clip);
    let dataset = service.default_dataset();
    let recovered = service
        .submit(Request::Range {
            dataset,
            query: Rect::new(Point([0.0, 0.0]), Point([26_000.0, 26_000.0])),
            use_clips: true,
        })
        .expect("service is open")
        .wait()
        .expect("range served")
        .response
        .into_range();
    println!(
        "second life: recovered {} objects at version {:?}, probe over the crash-era diagonal returned {}",
        service.report().datasets[0].live_objects,
        service.report().datasets[0].version,
        recovered.len(),
    );
    let report = service.shutdown();
    assert_eq!(report.datasets[0].version, pre_crash_version);
    assert_eq!(report.datasets[0].live_objects, pre_crash_live);
    assert!(report.recovered_records > 0, "the WAL tail replayed");
    println!(
        "recovery   : {} dataset(s), {} WAL records replayed, {} snapshot pages read",
        report.recovered_datasets, report.recovered_records, report.recovered_pages,
    );

    let _ = std::fs::remove_dir_all(&root);
}
