//! A service taking interleaved writes and reads: inserts, deletes, and
//! update batches flow through the same queue and micro-batcher as
//! queries; every write-carrying batch bumps the data version exactly
//! once and delta-applies into the per-tile trees — no forest rebuild,
//! untouched tiles shared copy-on-write with the previous version.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use std::time::Duration;

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::engine::{AdaptiveGrid, Update};
use clipped_bbox::prelude::*;

fn main() {
    let n = 10_000;
    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 11, 11);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    println!("dataset: {n} clustered boxes, adaptive 6×6 partitioning");

    let service = QueryService::start(
        ServiceConfig {
            batch_max: 32,
            batch_deadline: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
        partitioner,
        data.boxes.clone(),
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let dataset = service.default_dataset();
    println!(
        "start  : version {:?}, {} live objects",
        service.data_version(),
        service.live_object_count()
    );

    // A single insert: the store assigns the next arena id, and a read
    // admitted after the write completes is guaranteed to see it.
    let rect = Rect::new(Point([123.0, 456.0]), Point([321.0, 654.0]));
    let id = service
        .submit(Request::Insert { dataset, rect })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .expect("finite rect");
    let seen = service
        .submit(Request::Range {
            dataset,
            query: rect,
            use_clips: true,
        })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_range();
    assert!(seen.contains(&id), "read-your-writes");
    println!("insert : assigned {id:?}, immediately visible to reads");

    // Churn: delete a third of the originals and insert replacements,
    // shipped as update batches — each batch is atomic and bumps the
    // version once, however many updates it carries.
    let mut updates: Vec<Update<2>> = Vec::new();
    for i in 0..n / 3 {
        updates.push(Update::Delete(DataId((i * 3) as u32)));
    }
    for b in data.boxes.iter().take(n / 4) {
        let c = b.center();
        updates.push(Update::Insert(Rect::new(
            Point([c[0], c[1]]),
            Point([c[0] + b.extent(0), c[1] + b.extent(1)]),
        )));
    }
    let summary = service
        .submit(Request::UpdateBatch {
            dataset,
            updates: updates.clone(),
        })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_updated();
    println!(
        "churn  : {} updates in one batch → version {:?} (one bump)",
        updates.len(),
        summary.version,
    );
    println!(
        "store  : {} live objects after churn",
        service.live_object_count()
    );

    // Reads interleave freely; delete the first insert again.
    let gone = service
        .submit(Request::Delete { dataset, id })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_deleted();
    assert!(gone);
    let probes: Vec<Rect<2>> = data.boxes.iter().step_by(50).copied().collect();
    let join = service
        .submit(Request::Join {
            dataset,
            probes: probes.clone(),
            algo: JoinAlgo::Stt,
            use_clips: true,
        })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_join();
    println!(
        "join   : {} pairs ({} probes ⋈ churned dataset)",
        join.pairs,
        probes.len()
    );

    let report = service.shutdown();
    println!(
        "report : {} requests, {} write batches ({} updates), \
         {} delta node allocations, {} forest builds",
        report.completed,
        report.write_batches,
        report.updates_applied,
        report.delta_nodes_allocated,
        report.forest_builds,
    );
    assert_eq!(report.completed, report.submitted);
    assert_eq!(
        report.forest_builds, 1,
        "writes delta-apply — the start-time build is the only one"
    );
}
