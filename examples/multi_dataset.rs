//! A catalog of named spatial layers served side by side: two
//! co-located datasets with *different* partitioner kinds, per-dataset
//! versioning, cross-dataset joins reusing both sides' cached tile
//! forests, and per-dataset report rows (including the tile
//! load-imbalance drift metric).
//!
//! ```text
//! cargo run --release --example multi_dataset
//! ```

use clipped_bbox::datasets::multi::{layers, LayerSpec};
use clipped_bbox::engine::{AnyPartitioner, QuadtreePartitioner};
use clipped_bbox::prelude::*;

fn main() {
    // Two co-located clustered layers: roads and points of interest
    // drawn around the same "cities" (shared blob layout), so joining
    // them means something.
    let n = 8_000;
    let generated = layers::<2>(
        &[
            LayerSpec::clustered("roads", n),
            LayerSpec::clustered("pois", n / 2),
        ],
        7,
        42,
    );
    let (roads, pois) = (&generated[0].dataset, &generated[1].dataset);
    println!(
        "layers : roads ({}) + pois ({}) over one shared domain",
        roads.boxes.len(),
        pois.boxes.len()
    );

    // An empty catalog; each layer gets the partitioner that fits its
    // character — AnyPartitioner lets one service mix kinds.
    let service: QueryService<2, AnyPartitioner<2>> = QueryService::start_catalog(
        ServiceConfig::default(),
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let roads_id = service
        .create_dataset(
            "roads",
            AdaptiveGrid::from_sample(roads.domain, [6, 6], &roads.boxes).into(),
            roads.boxes.clone(),
        )
        .expect("fresh name");
    let pois_id = service
        .create_dataset(
            "pois",
            QuadtreePartitioner::build(pois.domain, &pois.boxes, 400).into(),
            pois.boxes.clone(),
        )
        .expect("fresh name");
    println!(
        "catalog: {:?} (adaptive grid) + {:?} (quadtree)",
        roads_id, pois_id
    );
    assert_eq!(service.dataset_id("roads"), Some(roads_id));

    // Each dataset answers its own queries, independently versioned.
    let window = {
        let c = roads.boxes[0].center();
        Rect::new(
            Point([c[0] - 25_000.0, c[1] - 25_000.0]),
            Point([c[0] + 25_000.0, c[1] + 25_000.0]),
        )
    };
    for (name, id) in [("roads", roads_id), ("pois", pois_id)] {
        let found = service
            .submit(Request::Range {
                dataset: id,
                query: window,
                use_clips: true,
            })
            .expect("service is open")
            .wait()
            .unwrap()
            .response
            .into_range();
        println!("range  : {} {name} in a 50k-unit window", found.len());
    }

    // The cross-dataset join: every (road, poi) intersection, tiled by
    // the indexed side's partitioner, BOTH cached forests reused —
    // repeat joins rebuild nothing.
    let cross = |left, right, algo| {
        service
            .submit(Request::CrossJoin {
                left,
                right,
                algo,
                use_clips: true,
            })
            .expect("service is open")
            .wait()
            .unwrap()
            .response
            .into_join()
    };
    let stt = cross(roads_id, pois_id, JoinAlgo::Stt);
    let stt_again = cross(roads_id, pois_id, JoinAlgo::Stt);
    let inlj = cross(roads_id, pois_id, JoinAlgo::Inlj);
    assert_eq!(stt, stt_again, "repeat cross joins answer identically");
    assert_eq!(stt.pairs, inlj.pairs, "STT and INLJ agree on pairs");
    println!(
        "cross  : roads ⋈ pois = {} pairs (×2 STT, ×1 INLJ)",
        stt.pairs
    );

    // Writes to one layer bump only that layer's version; the other
    // keeps serving its cached trees untouched.
    let inserted = service
        .submit(Request::Insert {
            dataset: pois_id,
            rect: pois.boxes[0],
        })
        .expect("service is open")
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .expect("finite rect");
    println!(
        "write  : inserted {inserted:?} into pois → versions roads {:?} / pois {:?}",
        service.dataset_version(roads_id).unwrap(),
        service.dataset_version(pois_id).unwrap(),
    );
    assert_eq!(service.dataset_version(roads_id), Some(DataVersion(0)));
    assert_eq!(service.dataset_version(pois_id), Some(DataVersion(1)));

    // Per-dataset report rows: stores, versions, maintenance counters,
    // and the load-imbalance drift metric.
    let report = service.report();
    for ds in &report.datasets {
        println!(
            "report : {:<6} v{} — {} live, imbalance {:.2}, {} write batches",
            ds.name, ds.version.0, ds.live_objects, ds.load_imbalance, ds.write_batches,
        );
    }
    assert_eq!(
        report.forest_builds, 2,
        "one build per layer, none per join"
    );

    // Drop a layer: its id never comes back, its cache entries are
    // evicted, in-flight work drains gracefully.
    assert!(service.drop_dataset(roads_id));
    assert_eq!(service.dataset_id("roads"), None);
    let report = service.shutdown();
    println!(
        "done   : {} requests served, {} cross joins, {} forest builds total",
        report.completed, report.cross_joins, report.forest_builds,
    );
    assert_eq!(report.completed, report.submitted);
}
