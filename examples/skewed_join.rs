//! Choosing a partitioner for skewed data: a clustered join runs under
//! the uniform grid, the sample-based adaptive grid, and the quadtree
//! region split — same exact pair count, very different load balance.
//!
//! ```text
//! cargo run --release --example skewed_join
//! ```

use std::time::Instant;

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::engine::{load_imbalance, AdaptiveGrid, Partitioner, QuadtreePartitioner};
use clipped_bbox::prelude::*;

fn main() {
    // Both sides cluster at the same eight Zipf-populated spots.
    let n = 20_000;
    let left = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 7, 1);
    let right = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 7, 2);
    let domain = left.domain.union(&right.domain);
    println!("join inputs: 2 × {n} clustered boxes (shared blob layout)");

    let mut sample = left.boxes.clone();
    sample.extend_from_slice(&right.boxes);
    let uniform = UniformGrid::new(domain, 8);
    let adaptive = AdaptiveGrid::from_sample(domain, [8, 8], &sample);
    let quadtree = QuadtreePartitioner::build(domain, &sample, 2 * n / 64);

    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let workers = 4;

    let mut expected = None;
    let mut report = |name: &str, imbalance: f64, tiles: usize, result: JoinResult, ms: f64| {
        println!(
            "{name:<9}: {tiles:>4} tiles, imbalance {imbalance:>6.2}, {} pairs, {ms:>7.1} ms",
            result.pairs,
        );
        match expected {
            None => expected = Some(result.pairs),
            Some(e) => assert_eq!(result.pairs, e, "{name}: pair count changed"),
        }
    };

    let t = Instant::now();
    let r = partitioned_join(
        &JoinPlan::new(uniform, tree, clip, workers),
        &left.boxes,
        &right.boxes,
    );
    report(
        "uniform",
        load_imbalance(&uniform, &left.boxes, &right.boxes),
        uniform.tile_count(),
        r,
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = Instant::now();
    let r = partitioned_join(
        &JoinPlan::new(adaptive.clone(), tree, clip, workers),
        &left.boxes,
        &right.boxes,
    );
    report(
        "adaptive",
        load_imbalance(&adaptive, &left.boxes, &right.boxes),
        adaptive.tile_count(),
        r,
        t.elapsed().as_secs_f64() * 1e3,
    );

    let t = Instant::now();
    let r = partitioned_join(
        &JoinPlan::new(quadtree.clone(), tree, clip, workers),
        &left.boxes,
        &right.boxes,
    );
    report(
        "quadtree",
        load_imbalance(&quadtree, &left.boxes, &right.boxes),
        quadtree.tile_count(),
        r,
        t.elapsed().as_secs_f64() * 1e3,
    );

    // The partitioned batch executor reuses its per-tile trees across
    // query batches — build once, serve many.
    let exec = BatchExecutor::build(adaptive, &left.boxes, tree, clip, workers);
    let queries: Vec<Rect<2>> = right.boxes.iter().take(2_000).copied().collect();
    let t = Instant::now();
    let first = exec.run(&queries, workers, true);
    let first_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let second = exec.run(&queries, workers, true);
    let second_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(first.results, second.results);
    println!(
        "\nbatch executor ({} tile trees reused): {} results, {first_ms:.1} ms then {second_ms:.1} ms",
        exec.tile_tree_count(),
        first.total_results(),
    );
}
