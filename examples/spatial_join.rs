//! Spatial join demo: axons ⋈ dendrites with both join strategies of §V
//! (Index Nested Loop Join and Synchronised Tree Traversal), with and
//! without clipping.
//!
//! ```text
//! cargo run --release --example spatial_join
//! ```

use clipped_bbox::datasets::{self, Scale};
use clipped_bbox::joins::{inlj, stt};
use clipped_bbox::prelude::*;

fn main() {
    // Subsampled neuro data is densified back to the paper's tissue
    // density by the registry — join selectivity is density-driven.
    let axons = datasets::dataset3("axo03", Scale::Exact(40_000));
    let dendrites = datasets::dataset3("den03", Scale::Exact(20_050));
    println!(
        "join inputs: {} axon boxes ⋈ {} dendrite boxes (paper density)",
        axons.len(),
        dendrites.len(),
    );

    let clip_cfg = ClipConfig::paper_default::<3>(ClipMethod::Stairline);
    let build = |d: &datasets::Dataset<3>| {
        let config = TreeConfig::paper_default(Variant::RStar).with_world(d.domain);
        ClippedRTree::from_tree(RTree::bulk_load(config, &d.items()), clip_cfg)
    };
    let axon_tree = build(&axons);
    let dendrite_tree = build(&dendrites);

    // INLJ: index the larger input (axons), probe with every dendrite.
    let plain = inlj(&dendrites.boxes, &axon_tree, false);
    let clipped = inlj(&dendrites.boxes, &axon_tree, true);
    assert_eq!(plain.pairs, clipped.pairs, "clipping must not change pairs");
    println!("INLJ: {} intersecting pairs", plain.pairs);
    println!(
        "  unclipped: {:>9} leaf accesses\n  clipped:   {:>9} leaf accesses ({:.1}% saved)",
        plain.leaf_accesses_right,
        clipped.leaf_accesses_right,
        100.0 * (1.0 - clipped.leaf_accesses_right as f64 / plain.leaf_accesses_right as f64)
    );

    // STT: both sides indexed, synchronised descent.
    let plain = stt(&axon_tree, &dendrite_tree, false);
    let clipped = stt(&axon_tree, &dendrite_tree, true);
    assert_eq!(plain.pairs, clipped.pairs);
    let total = |r: &clipped_bbox::joins::JoinResult| r.leaf_accesses_left + r.leaf_accesses_right;
    println!("STT:  {} intersecting pairs", plain.pairs);
    println!(
        "  unclipped: {:>9} leaf accesses\n  clipped:   {:>9} leaf accesses ({:.1}% saved, {} prunes)",
        total(&plain),
        total(&clipped),
        100.0 * (1.0 - total(&clipped) as f64 / total(&plain) as f64),
        clipped.clip_prunes
    );
    println!("(paper: STT does far fewer total accesses than INLJ; clipping saves more on INLJ)");
}
