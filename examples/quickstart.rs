//! Quickstart: build an R-tree, clip it, and watch the I/O drop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clipped_bbox::datasets::{self, Scale};
use clipped_bbox::prelude::*;

fn main() {
    // 1. A real-ish workload: the par02 benchmark stand-in (50k boxes with
    //    heavy-tailed sizes).
    let data = datasets::dataset2("par02", Scale::Exact(50_000));
    println!("dataset: {} with {} objects", data.name, data.len());

    // 2. Build an R*-tree with the paper's page-derived capacities.
    let config = TreeConfig::paper_default(Variant::RStar).with_world(data.domain);
    let tree = RTree::bulk_load(config, &data.items());
    println!(
        "R*-tree: {} nodes, height {}, {} leaves",
        tree.node_count(),
        tree.height(),
        tree.leaf_count()
    );

    // 3. Attach clipped bounding boxes (CBB_STA, k = 2^{d+1}, τ = 2.5 %).
    let clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));
    println!(
        "clipped: {} clip points ({:.2} per node)",
        clipped.total_clip_points(),
        clipped.avg_clips_per_node()
    );

    // 4. Run the same selective queries on both and compare leaf I/O.
    let mut counter = |q: &Rect<2>| clipped.tree.range_query(q).len();
    let queries =
        datasets::generate_queries(&data, datasets::QueryProfile::QR0, 500, 42, &mut counter);

    let mut base = AccessStats::new();
    let mut clip = AccessStats::new();
    for q in &queries {
        let a = clipped.tree.range_query_stats(q, &mut base);
        let b = clipped.range_query_stats(q, &mut clip);
        assert_eq!(a.len(), b.len(), "clipping must never change results");
    }
    println!(
        "unclipped: {} leaf accesses over {} queries",
        base.leaf_accesses,
        queries.len()
    );
    println!(
        "clipped:   {} leaf accesses ({} prunes) — {:.1}% of baseline",
        clip.leaf_accesses,
        clip.clip_prunes,
        100.0 * clip.leaf_accesses as f64 / base.leaf_accesses as f64
    );
}
