//! A sharded scatter-gather service and the typed client API in front
//! of it: the same catalog surface as `QueryService`, served by N
//! in-process shards. Arenas are mirrored (every shard holds every
//! object), forests are sharded (each shard indexes a contiguous tile
//! range), and the reference-point rule makes each merge exact — a
//! 4-shard answer is byte-identical to the single-store one.
//!
//! ```text
//! cargo run --release --example sharded_service
//! ```

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::engine::AdaptiveGrid;
use clipped_bbox::prelude::*;

fn main() {
    let n = 8_000;
    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 7, 7);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    println!("dataset: {n} clustered boxes, adaptive 6×6 partitioning");

    // One builder call replaces QueryService::start: shard count and
    // tile fitting are just knobs. Fitted ranges spread the clustered
    // hot region across shards instead of landing it on one.
    let service = ServiceBuilder::new()
        .shards(4)
        .shard_fitting(ShardFitting::Fitted)
        .batch_max(32)
        .build(partitioner.clone(), data.boxes.clone(), tree, clip);
    let map = service
        .dataset_shard_map(service.default_dataset())
        .expect("default dataset is routed");
    println!(
        "shards : {} shards over {} tiles, fitted ranges {:?}",
        map.shard_count(),
        map.tile_count(),
        (0..map.shard_count())
            .map(|s| map.range(s))
            .collect::<Vec<_>>(),
    );

    // The typed client binds a dataset once; every method is the same
    // request the enum path submits, so both styles mix freely.
    let roads = service.dataset(DEFAULT_DATASET).expect("created at start");
    let center = data.boxes[0].center();
    let window = Rect::new(
        Point([center[0] - 30_000.0, center[1] - 30_000.0]),
        Point([center[0] + 30_000.0, center[1] + 30_000.0]),
    );
    let range = roads.range(window).expect("service is open");
    let knn = roads.knn(center, 5).expect("service is open");

    // A second served layer, then a cross-dataset join by name.
    let parcels_boxes: Vec<Rect<2>> = data.boxes.iter().step_by(3).copied().collect();
    let parcels_p = AdaptiveGrid::from_sample(data.domain, [4, 4], &parcels_boxes);
    service
        .create_dataset("parcels", parcels_p, parcels_boxes.clone())
        .expect("fresh name");
    let join = roads
        .join("parcels", JoinAlgo::Stt)
        .expect("parcels exists")
        .expect("service is open");

    let hits = range.wait().unwrap().response.into_range();
    println!("range  : {} objects in a 60k-unit window", hits.len());
    let nn = knn.wait().unwrap().response.into_knn();
    println!(
        "knn    : 5 nearest, distances {:.0} .. {:.0}",
        nn.first().unwrap().1.sqrt(),
        nn.last().unwrap().1.sqrt(),
    );
    let pairs = join.wait().unwrap().response.into_join().pairs;
    println!("join   : roads ⋈ parcels = {pairs} pairs, merged across 4 shards");

    // The oracle property, demonstrated: a single-store service on the
    // same data answers every one of those requests identically.
    let single = ServiceBuilder::new().build(partitioner, data.boxes.clone(), tree, clip);
    let single_roads = single.dataset(DEFAULT_DATASET).expect("created at start");
    let same_hits = single_roads
        .range(window)
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range();
    assert_eq!(hits, same_hits, "sharding never changes an answer");
    println!("oracle : 1-shard service returns the identical range answer");
    single.shutdown();

    // The router's own telemetry: scatter width and per-shard routing.
    let scrape = service.scrape();
    let routed: Vec<u64> = (0..4)
        .map(|s| {
            scrape
                .snapshot
                .counter(
                    "cbb_router_shard_requests_total",
                    &[("shard", &s.to_string())],
                )
                .unwrap_or(0)
        })
        .collect();
    println!("router : per-shard routed requests {routed:?}");

    let report = service.shutdown();
    println!(
        "report : {} shard-level requests completed across 4 shards, \
         {} tile-forest builds",
        report.completed, report.forest_builds,
    );
    assert_eq!(report.completed, report.submitted);
}
