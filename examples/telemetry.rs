//! Observability end to end: serve a mixed workload, then *scrape* the
//! service — Prometheus-style text and JSON expositions over one shared
//! metrics registry — and read the slow-query ring's per-request phase
//! breakdowns (queue-wait → coalesce → lock-acquire → execute →
//! respond, with engine sub-phases).
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use std::time::Duration;

use clipped_bbox::datasets::skew::clustered_with_layout;
use clipped_bbox::engine::AdaptiveGrid;
use clipped_bbox::prelude::*;

fn main() {
    let n = 10_000;
    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, 21, 21);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    println!("dataset: {n} clustered boxes, adaptive 6×6 partitioning");

    // Telemetry is on by default; `TelemetryConfig::disabled()` turns
    // every handle into a no-op (same answers, empty scrapes).
    let service = QueryService::start(
        ServiceConfig {
            batch_max: 32,
            batch_deadline: Duration::from_millis(2),
            telemetry: TelemetryConfig {
                slow_query_capacity: 5,
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        partitioner,
        data.boxes.clone(),
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let dataset = service.default_dataset();

    // A mixed burst: ranges (clipped and baseline), kNN probes, a join,
    // and a write — every request kind leaves its mark in the registry.
    let mut handles = Vec::new();
    for i in 0..60 {
        let center = data.boxes[i * (n / 60)].center();
        handles.push(
            service
                .submit(Request::Range {
                    dataset,
                    query: Rect::new(
                        Point([center[0] - 15_000.0, center[1] - 15_000.0]),
                        Point([center[0] + 15_000.0, center[1] + 15_000.0]),
                    ),
                    use_clips: i % 2 == 0,
                })
                .expect("service is open"),
        );
        if i % 5 == 0 {
            handles.push(
                service
                    .submit(Request::Knn {
                        dataset,
                        center,
                        k: 8,
                    })
                    .expect("service is open"),
            );
        }
    }
    handles.push(
        service
            .submit(Request::Join {
                dataset,
                probes: data.boxes.iter().step_by(100).copied().collect(),
                algo: JoinAlgo::Stt,
                use_clips: true,
            })
            .expect("service is open"),
    );
    handles.push(
        service
            .submit(Request::Insert {
                dataset,
                rect: data.boxes[0],
            })
            .expect("service is open"),
    );
    for h in handles {
        h.wait().expect("request served");
    }

    // ── Scrape: one registry, two renderings.
    let scrape = service.scrape();
    let families = scrape.snapshot.families.len();
    println!("\nscrape: {families} metric families, text + JSON expositions");
    for line in scrape
        .text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("cbb_requests_")
                || l.starts_with("cbb_access_leaf")
                || l.starts_with("cbb_dataset_tile_occupancy")
        })
        .take(12)
    {
        println!("  {line}");
    }
    assert!(families >= 15, "the scrape surface is a pinned API");
    assert!(scrape.json.contains("cbb_request_latency_ns"));

    // ── The slow-query ring: top-K by service time, each entry carrying
    // its phase breakdown and the work counters behind it.
    println!("\nslowest requests (phase breakdown in µs):");
    for q in service.slow_queries() {
        let phases: Vec<String> = q
            .span
            .breakdown()
            .iter()
            .map(|(name, ns)| format!("{name} {:.1}", *ns as f64 / 1e3))
            .collect();
        let dataset = q.dataset.as_deref().unwrap_or("-");
        println!(
            "  {:>12} on {dataset}: total {:.1} µs [{}]",
            q.kind,
            q.total_ns as f64 / 1e3,
            phases.join(", "),
        );
    }

    // ── Reports are views over the same registry cells.
    let report = service.report();
    let ds = &report.datasets[0];
    println!(
        "\nreport: {} completed, {} batches (mean {:.2}), occupancy p50 {} / p99 {}",
        report.completed,
        report.batches,
        report.mean_batch,
        ds.occupancy_p50(),
        ds.occupancy_p99(),
    );
    let completed = scrape
        .snapshot
        .counter("cbb_requests_completed_total", &[])
        .expect("registered");
    assert_eq!(completed, report.completed, "report == registry view");

    service.shutdown();
    println!(
        "\ndone: scrape-able metrics, phase traces, and slow-query forensics from one registry"
    );
}
