//! Parallel partitioned join demo: the `cbb-engine` subsystem fans a
//! spatial join out over a uniform grid and a worker pool, while every
//! per-tile probe keeps benefiting from clip-point pruning. Pair counts
//! are bit-identical to the sequential join.
//!
//! ```text
//! cargo run --release --example parallel_join
//! ```

use std::time::Instant;

use clipped_bbox::datasets::{self, Scale};
use clipped_bbox::engine::sequential_join;
use clipped_bbox::prelude::*;

fn main() {
    let streets = datasets::dataset2("rea02", Scale::Exact(60_000));
    let parcels = datasets::dataset2("par02", Scale::Exact(60_000));
    println!(
        "join inputs: {} street boxes ⋈ {} parcel boxes",
        streets.len(),
        parcels.len(),
    );

    // Any `Partitioner` fits here — see examples/skewed_join.rs for the
    // adaptive and quadtree alternatives on skewed data.
    let grid = UniformGrid::new(streets.domain.union(&parcels.domain), 8);
    let base_plan = JoinPlan::new(
        grid,
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        1,
    );

    let t = Instant::now();
    let seq = sequential_join(&base_plan, &streets.boxes, &parcels.boxes);
    let seq_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nsequential STT          : {:>9} pairs  {:>8.1} ms",
        seq.pairs, seq_ms
    );

    for workers in [1, 2, 4, 8] {
        let plan = JoinPlan {
            workers,
            ..base_plan
        };
        let t = Instant::now();
        let par = partitioned_join(&plan, &streets.boxes, &parcels.boxes);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(par.pairs, seq.pairs, "partitioning must not change pairs");
        println!(
            "partitioned 8×8, {workers} thr : {:>9} pairs  {:>8.1} ms  ({:.2}× vs sequential)",
            par.pairs,
            ms,
            seq_ms / ms,
        );
    }

    // Batched range queries against one shared clipped tree.
    let items = streets.items();
    let tree = ClippedRTree::from_tree(
        RTree::bulk_load(
            TreeConfig::paper_default(Variant::RStar).with_world(streets.domain),
            &items,
        ),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let mut counter = |q: &Rect<2>| tree.tree.range_query(q).len();
    let queries = datasets::generate_queries(
        &streets,
        datasets::QueryProfile::QR1,
        4_000,
        7,
        &mut counter,
    );
    println!("\nbatched range queries ({} queries):", queries.len());
    let t = Instant::now();
    let base = parallel_range_queries(&tree, &queries, 1, true);
    let base_ms = t.elapsed().as_secs_f64() * 1e3;
    for workers in [2, 4, 8] {
        let t = Instant::now();
        let out = parallel_range_queries(&tree, &queries, workers, true);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.results, base.results);
        println!(
            "  {workers} workers: {:>8.1} ms ({:.2}× vs 1 worker), {} results, {} leaf accesses",
            ms,
            base_ms / ms,
            out.total_results(),
            out.stats.leaf_accesses,
        );
    }
}
